/**
 * @file
 * Kernel bodies of the comparator implementations.  This translation
 * unit is compiled twice: once with full auto-vectorisation (namespace
 * vec_impl) and once with vectorisation disabled (novec_impl), giving
 * the paper's tuned / tuned+vec comparator pairs.  PM_CMP_NS selects
 * the namespace.
 */
#include <algorithm>
#include <cmath>
#include <ctime>
#include <vector>

#include "comparators/comparators.hpp"
#include "support/intmath.hpp"

#ifndef PM_CMP_NS
#error "compile with -DPM_CMP_NS=<namespace>"
#endif

namespace polymage::cmp {
namespace PM_CMP_NS {

using rt::Buffer;

namespace {

double
now()
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return double(ts.tv_sec) + 1e-9 * double(ts.tv_nsec);
}

/** Collects the per-pass profile. */
class PassTimer
{
  public:
    explicit PassTimer(std::vector<StagePass> &out) : out_(out) {}

    template <typename Fn>
    void
    pass(const std::string &name, std::int64_t iters, Fn &&fn)
    {
        const double t0 = now();
        fn();
        out_.push_back({name, now() - t0, iters});
    }

  private:
    std::vector<StagePass> &out_;
};

//-------------------------------------------------------------------------
// Shared pyramid helpers (match apps/pyramid_util.cpp semantics).
//-------------------------------------------------------------------------

/** Vertical [1 2 1]/4 downsample rows: dst (sr x tc), src (>= x tc). */
void
downRows(float *dst, const float *src, std::int64_t sr, std::int64_t tc,
         std::int64_t src_stride)
{
#pragma omp parallel for schedule(static)
    for (std::int64_t x = 0; x < sr; ++x) {
        if (x == 0) {
            for (std::int64_t y = 0; y < tc; ++y) {
                dst[y] = (src[y] + src[src_stride + y]) * 0.5f;
            }
        } else {
            const float *s = src + 2 * x * src_stride;
            float *d = dst + x * tc;
            for (std::int64_t y = 0; y < tc; ++y) {
                d[y] = s[y - src_stride] * 0.25f + s[y] * 0.5f +
                       s[y + src_stride] * 0.25f;
            }
        }
    }
}

/** Horizontal [1 2 1]/4 downsample cols: dst (sr x tc), src (sr x ?). */
void
downCols(float *dst, const float *src, std::int64_t sr, std::int64_t tc,
         std::int64_t src_stride)
{
#pragma omp parallel for schedule(static)
    for (std::int64_t x = 0; x < sr; ++x) {
        const float *s = src + x * src_stride;
        float *d = dst + x * tc;
        d[0] = (s[0] + s[1]) * 0.5f;
        for (std::int64_t y = 1; y < tc; ++y) {
            d[y] = s[2 * y - 1] * 0.25f + s[2 * y] * 0.5f +
                   s[2 * y + 1] * 0.25f;
        }
    }
}

/** Linear row upsample: dst (dr x c), src (sr x c). */
void
upRows(float *dst, const float *src, std::int64_t dr, std::int64_t sr,
       std::int64_t c)
{
#pragma omp parallel for schedule(static)
    for (std::int64_t x = 0; x < dr; ++x) {
        float *d = dst + x * c;
        if (x >= 2 * sr - 1) {
            const float *s = src + ((x - 1) / 2) * c;
            for (std::int64_t y = 0; y < c; ++y)
                d[y] = s[y];
        } else if (x % 2 == 0) {
            const float *s = src + (x / 2) * c;
            for (std::int64_t y = 0; y < c; ++y)
                d[y] = s[y];
        } else {
            const float *s0 = src + (x / 2) * c;
            const float *s1 = s0 + c;
            for (std::int64_t y = 0; y < c; ++y)
                d[y] = (s0[y] + s1[y]) * 0.5f;
        }
    }
}

/** Linear column upsample: dst (r x dc), src (r x sc). */
void
upCols(float *dst, const float *src, std::int64_t r, std::int64_t dc,
       std::int64_t sc)
{
#pragma omp parallel for schedule(static)
    for (std::int64_t x = 0; x < r; ++x) {
        float *d = dst + x * dc;
        const float *s = src + x * sc;
        for (std::int64_t y = 0; y < dc; ++y) {
            if (y >= 2 * sc - 1)
                d[y] = s[(y - 1) / 2];
            else if (y % 2 == 0)
                d[y] = s[y / 2];
            else
                d[y] = (s[y / 2] + s[y / 2 + 1]) * 0.5f;
        }
    }
}

std::vector<std::int64_t>
levelSizes(std::int64_t s0, int levels)
{
    std::vector<std::int64_t> v{s0};
    for (int l = 1; l < levels; ++l)
        v.push_back(v.back() / 2);
    return v;
}

} // namespace

//-------------------------------------------------------------------------
// Unsharp mask: strip-fused, matching the paper's note that the tuned
// Halide schedule is close to PolyMage's best.
//-------------------------------------------------------------------------
CmpResult
htunedUnsharp(const Buffer &in_rgb)
{
    const std::int64_t rows = in_rgb.dims()[1];
    const std::int64_t cols = in_rgb.dims()[2];
    const std::int64_t R = rows - 4, C = cols - 4;
    CmpResult res;
    res.output = Buffer(dsl::DType::Float, {3, rows, cols});
    PassTimer timer(res.passes);

    const float *in = in_rgb.dataAs<const float>();
    float *out = res.output.dataAs<float>();
    const std::int64_t strip = 32;
    const std::int64_t nstrips = (R + strip - 1) / strip;

    timer.pass("fused", 3 * nstrips, [&] {
        for (int c = 0; c < 3; ++c) {
            const float *ip = in + c * rows * cols;
            float *op = out + c * rows * cols;
#pragma omp parallel for schedule(static)
            for (std::int64_t s = 0; s < nstrips; ++s) {
                const std::int64_t x0 =
                    std::max<std::int64_t>(2, 2 + s * strip);
                const std::int64_t x1 =
                    std::min<std::int64_t>(R + 1, x0 + strip - 1);
                std::vector<float> blury((strip + 8) * cols);
                std::vector<float> blurx((strip + 8) * cols);
                for (std::int64_t x = x0; x <= x1; ++x) {
                    const float *sp = ip + x * cols;
                    float *by = blury.data() + (x - x0) * cols;
                    for (std::int64_t y = 0; y < cols; ++y) {
                        by[y] = sp[y - 2 * cols] * (1.f / 16) +
                                sp[y - cols] * (4.f / 16) +
                                sp[y] * (6.f / 16) +
                                sp[y + cols] * (4.f / 16) +
                                sp[y + 2 * cols] * (1.f / 16);
                    }
                }
                for (std::int64_t x = x0; x <= x1; ++x) {
                    const float *by = blury.data() + (x - x0) * cols;
                    float *bx = blurx.data() + (x - x0) * cols;
                    for (std::int64_t y = 2; y <= C + 1; ++y) {
                        bx[y] = by[y - 2] * (1.f / 16) +
                                by[y - 1] * (4.f / 16) +
                                by[y] * (6.f / 16) +
                                by[y + 1] * (4.f / 16) +
                                by[y + 2] * (1.f / 16);
                    }
                }
                for (std::int64_t x = x0; x <= x1; ++x) {
                    const float *sp = ip + x * cols;
                    const float *bx = blurx.data() + (x - x0) * cols;
                    float *op_row = op + x * cols;
                    for (std::int64_t y = 2; y <= C + 1; ++y) {
                        const float sharpen =
                            sp[y] * 4.0f - bx[y] * 3.0f;
                        op_row[y] = std::fabs(sp[y] - bx[y]) < 0.01f
                                        ? sp[y]
                                        : sharpen;
                    }
                }
            }
        }
    });
    return res;
}

//-------------------------------------------------------------------------
// Harris: Ix/Iy at root (fused pair), response pass with the box sums
// and point-wise stages inlined (the Halide repository schedule).
//-------------------------------------------------------------------------
CmpResult
htunedHarris(const Buffer &in)
{
    const std::int64_t rows = in.dims()[0], cols = in.dims()[1];
    const std::int64_t R = rows - 2, C = cols - 2;
    CmpResult res;
    res.output = Buffer(dsl::DType::Float, {rows, cols});
    PassTimer timer(res.passes);

    const float *ip = in.dataAs<const float>();
    Buffer bx(dsl::DType::Float, {rows, cols});
    Buffer by(dsl::DType::Float, {rows, cols});
    float *Ix = bx.dataAs<float>();
    float *Iy = by.dataAs<float>();
    float *out = res.output.dataAs<float>();

    timer.pass("IxIy", R, [&] {
#pragma omp parallel for schedule(static)
        for (std::int64_t x = 1; x <= R; ++x) {
            const float *s0 = ip + (x - 1) * cols;
            const float *s1 = ip + x * cols;
            const float *s2 = ip + (x + 1) * cols;
            float *dx = Ix + x * cols;
            float *dy = Iy + x * cols;
            for (std::int64_t y = 1; y <= C; ++y) {
                dy[y] = (-s0[y - 1] - 2 * s0[y] - s0[y + 1] +
                         s2[y - 1] + 2 * s2[y] + s2[y + 1]) *
                        (1.0f / 12);
                dx[y] = (-s0[y - 1] + s0[y + 1] - 2 * s1[y - 1] +
                         2 * s1[y + 1] - s2[y - 1] + s2[y + 1]) *
                        (1.0f / 12);
            }
        }
    });

    timer.pass("response", R - 2, [&] {
#pragma omp parallel for schedule(static)
        for (std::int64_t x = 2; x <= R - 1; ++x) {
            float *o = out + x * cols;
            for (std::int64_t y = 2; y <= C - 1; ++y) {
                float sxx = 0, syy = 0, sxy = 0;
                for (int dx = -1; dx <= 1; ++dx) {
                    const float *rx = Ix + (x + dx) * cols;
                    const float *ry = Iy + (x + dx) * cols;
                    for (int dy = -1; dy <= 1; ++dy) {
                        const float vx = rx[y + dy];
                        const float vy = ry[y + dy];
                        sxx += vx * vx;
                        syy += vy * vy;
                        sxy += vx * vy;
                    }
                }
                const float det = sxx * syy - sxy * sxy;
                const float trace = sxx + syy;
                o[y] = det - 0.04f * trace * trace;
            }
        }
    });
    return res;
}

//-------------------------------------------------------------------------
// Bilateral grid: slab-parallel grid construction, per-axis blur
// passes, trilinear slice (the Halide schedule's structure).
//-------------------------------------------------------------------------
CmpResult
htunedBilateral(const Buffer &in)
{
    const std::int64_t R = in.dims()[0], C = in.dims()[1];
    const std::int64_t s = 8;
    const std::int64_t GX = R / s + 4, GY = C / s + 4, GZ = 13;
    CmpResult res;
    res.output = Buffer(dsl::DType::Float, {R, C});
    PassTimer timer(res.passes);

    const float *ip = in.dataAs<const float>();
    const std::int64_t cells = GX * GY * GZ;
    std::vector<float> gridv(cells, 0.f), gridw(cells, 0.f);
    std::vector<float> t0(cells * 2), t1(cells * 2), t2(cells * 2);
    auto at = [&](std::int64_t gx, std::int64_t gy, std::int64_t gz) {
        return (gx * GY + gy) * GZ + gz;
    };

    timer.pass("grid", GX, [&] {
        // Pixels mapping to one gx slab are disjoint: parallel-safe.
#pragma omp parallel for schedule(static)
        for (std::int64_t gx = 1; gx < GX; ++gx) {
            const std::int64_t xlo =
                std::max<std::int64_t>(0, (gx - 1) * s - s / 2);
            const std::int64_t xhi =
                std::min<std::int64_t>(R - 1, (gx - 1) * s + s / 2 - 1);
            for (std::int64_t x = xlo; x <= xhi; ++x) {
                if ((x + s / 2) / s + 1 != gx)
                    continue;
                for (std::int64_t y = 0; y < C; ++y) {
                    const float v = ip[x * C + y];
                    const std::int64_t gy = (y + s / 2) / s + 1;
                    const std::int64_t gz =
                        std::int64_t(v * 10.0f + 0.5f) + 1;
                    gridv[at(gx, gy, gz)] += v;
                    gridw[at(gx, gy, gz)] += 1.0f;
                }
            }
        }
    });

    // blurz from (gridv, gridw) into t0 (interleaved components).
    timer.pass("blurz", GX, [&] {
#pragma omp parallel for schedule(static)
        for (std::int64_t gx = 0; gx < GX; ++gx) {
            for (std::int64_t gy = 0; gy < GY; ++gy) {
                for (std::int64_t gz = 1; gz <= 11; ++gz) {
                    const std::int64_t i = at(gx, gy, gz);
                    t0[i * 2] = gridv[i - 1] * 0.25f +
                                gridv[i] * 0.5f + gridv[i + 1] * 0.25f;
                    t0[i * 2 + 1] = gridw[i - 1] * 0.25f +
                                    gridw[i] * 0.5f +
                                    gridw[i + 1] * 0.25f;
                }
            }
        }
    });
    timer.pass("blurx", R / s + 2, [&] {
#pragma omp parallel for schedule(static)
        for (std::int64_t gx = 1; gx <= R / s + 2; ++gx) {
            for (std::int64_t gy = 0; gy < GY; ++gy) {
                for (std::int64_t gz = 1; gz <= 11; ++gz) {
                    for (int comp = 0; comp < 2; ++comp) {
                        t1[at(gx, gy, gz) * 2 + comp] =
                            t0[at(gx - 1, gy, gz) * 2 + comp] * 0.25f +
                            t0[at(gx, gy, gz) * 2 + comp] * 0.5f +
                            t0[at(gx + 1, gy, gz) * 2 + comp] * 0.25f;
                    }
                }
            }
        }
    });
    timer.pass("blury", R / s + 2, [&] {
#pragma omp parallel for schedule(static)
        for (std::int64_t gx = 1; gx <= R / s + 2; ++gx) {
            for (std::int64_t gy = 1; gy <= C / s + 2; ++gy) {
                for (std::int64_t gz = 1; gz <= 11; ++gz) {
                    for (int comp = 0; comp < 2; ++comp) {
                        t2[at(gx, gy, gz) * 2 + comp] =
                            t1[at(gx, gy - 1, gz) * 2 + comp] * 0.25f +
                            t1[at(gx, gy, gz) * 2 + comp] * 0.5f +
                            t1[at(gx, gy + 1, gz) * 2 + comp] * 0.25f;
                    }
                }
            }
        }
    });

    timer.pass("slice", R, [&] {
        float *out = res.output.dataAs<float>();
#pragma omp parallel for schedule(static)
        for (std::int64_t x = 0; x < R; ++x) {
            for (std::int64_t y = 0; y < C; ++y) {
                const float v = ip[x * C + y];
                const std::int64_t gx0 = x / s + 1, gy0 = y / s + 1;
                const float zv = v * 10.0f;
                const std::int64_t zi = std::int64_t(zv);
                const std::int64_t gz0 = zi + 1;
                const float fx = float(x % s) * (1.0f / s);
                const float fy = float(y % s) * (1.0f / s);
                const float fz = zv - float(zi);
                float interp[2];
                for (int comp = 0; comp < 2; ++comp) {
                    auto g = [&](std::int64_t a, std::int64_t b,
                                 std::int64_t c2) {
                        return t2[at(a, b, c2) * 2 + comp];
                    };
                    auto lerp = [](float a, float b, float t) {
                        return a + (b - a) * t;
                    };
                    const float c00 = lerp(g(gx0, gy0, gz0),
                                           g(gx0 + 1, gy0, gz0), fx);
                    const float c10 =
                        lerp(g(gx0, gy0 + 1, gz0),
                             g(gx0 + 1, gy0 + 1, gz0), fx);
                    const float c01 =
                        lerp(g(gx0, gy0, gz0 + 1),
                             g(gx0 + 1, gy0, gz0 + 1), fx);
                    const float c11 =
                        lerp(g(gx0, gy0 + 1, gz0 + 1),
                             g(gx0 + 1, gy0 + 1, gz0 + 1), fx);
                    interp[comp] = lerp(lerp(c00, c10, fy),
                                        lerp(c01, c11, fy), fz);
                }
                out[x * C + y] = interp[0] / interp[1];
            }
        }
    });
    return res;
}

//-------------------------------------------------------------------------
// Camera pipeline: denoise pass, then a fused demosaic/correct/curve
// pass over output rows (the structure of the expert FCam version).
//-------------------------------------------------------------------------
CmpResult
htunedCamera(const Buffer &raw)
{
    const std::int64_t rows = raw.dims()[0], cols = raw.dims()[1];
    const std::int64_t R = rows - 4, C = cols - 4;
    CmpResult res;
    res.output = Buffer(dsl::DType::UChar, {3, R - 6, C - 6});
    PassTimer timer(res.passes);

    const unsigned short *rp = raw.dataAs<const unsigned short>();
    std::vector<unsigned short> den(rows * cols, 0);

    timer.pass("denoise", R, [&] {
#pragma omp parallel for schedule(static)
        for (std::int64_t x = 2; x <= R + 1; ++x) {
            for (std::int64_t y = 2; y <= C + 1; ++y) {
                const unsigned short up = rp[(x - 2) * cols + y];
                const unsigned short dn = rp[(x + 2) * cols + y];
                const unsigned short lf = rp[x * cols + y - 2];
                const unsigned short rt = rp[x * cols + y + 2];
                const unsigned short lo =
                    std::min(std::min(up, dn), std::min(lf, rt));
                const unsigned short hi =
                    std::max(std::max(up, dn), std::max(lf, rt));
                den[x * cols + y] =
                    std::clamp(rp[x * cols + y], lo, hi);
            }
        }
    });

    // Gamma LUT.
    std::vector<float> curve(1024);
    timer.pass("curve", 1, [&] {
        for (int i = 0; i < 1024; ++i) {
            curve[std::size_t(i)] =
                255.0f * std::pow(float(i) * (1.0f / 1023.0f),
                                  1.0f / 2.2f);
        }
    });

    const float kInv = 1.0f / 1023.0f;
    auto gr = [&](std::int64_t x, std::int64_t y) {
        return float(den[(2 * x + 2) * cols + 2 * y + 2]) *
               (1.0f * kInv);
    };
    auto rpl = [&](std::int64_t x, std::int64_t y) {
        return float(den[(2 * x + 2) * cols + 2 * y + 3]) *
               (1.25f * kInv);
    };
    auto bpl = [&](std::int64_t x, std::int64_t y) {
        return float(den[(2 * x + 3) * cols + 2 * y + 2]) *
               (1.45f * kInv);
    };
    auto gb = [&](std::int64_t x, std::int64_t y) {
        return float(den[(2 * x + 3) * cols + 2 * y + 3]) *
               (1.0f * kInv);
    };

    timer.pass("demosaic+correct+curve", R - 6, [&] {
        unsigned char *out = res.output.dataAs<unsigned char>();
        const std::int64_t orows = R - 6, ocols = C - 6;
#pragma omp parallel for schedule(static)
        for (std::int64_t x = 0; x < orows; ++x) {
            for (std::int64_t y = 0; y < ocols; ++y) {
                const std::int64_t hx = (x + 2) / 2, hy = (y + 2) / 2;
                const bool ex = (x % 2 == 0), ey = (y % 2 == 0);
                float rv, gv, bv;
                if (ex && ey) {
                    rv = (rpl(hx, hy - 1) + rpl(hx, hy)) * 0.5f;
                    gv = gr(hx, hy);
                    bv = (bpl(hx - 1, hy) + bpl(hx, hy)) * 0.5f;
                } else if (ex && !ey) {
                    rv = rpl(hx, hy);
                    gv = (gr(hx, hy) + gr(hx, hy + 1) +
                          gb(hx - 1, hy) + gb(hx, hy)) *
                         0.25f;
                    bv = (bpl(hx - 1, hy) + bpl(hx, hy) +
                          bpl(hx - 1, hy + 1) + bpl(hx, hy + 1)) *
                         0.25f;
                } else if (!ex && ey) {
                    rv = (rpl(hx, hy - 1) + rpl(hx, hy) +
                          rpl(hx + 1, hy - 1) + rpl(hx + 1, hy)) *
                         0.25f;
                    gv = (gr(hx, hy) + gr(hx + 1, hy) +
                          gb(hx, hy - 1) + gb(hx, hy)) *
                         0.25f;
                    bv = bpl(hx, hy);
                } else {
                    rv = (rpl(hx, hy) + rpl(hx + 1, hy)) * 0.5f;
                    gv = gb(hx, hy);
                    bv = (bpl(hx, hy) + bpl(hx, hy + 1)) * 0.5f;
                }
                const float cr =
                    rv * 1.62f + gv * -0.44f + bv * -0.18f;
                const float cg =
                    rv * -0.21f + gv * 1.49f + bv * -0.28f;
                const float cb =
                    rv * -0.09f + gv * -0.35f + bv * 1.44f;
                auto apply = [&](float v) {
                    const int idx = std::clamp(int(v * 1023.0f), 0,
                                               1023);
                    return (unsigned char)(curve[std::size_t(idx)]);
                };
                out[(0 * orows + x) * ocols + y] = apply(cr);
                out[(1 * orows + x) * ocols + y] = apply(cg);
                out[(2 * orows + x) * ocols + y] = apply(cb);
            }
        }
    });
    return res;
}

//-------------------------------------------------------------------------
// Pyramid blending: per-stage passes (paper: the tuned schedule does
// not group stages), matching apps/pyramid_blend.cpp semantics.
//-------------------------------------------------------------------------
CmpResult
htunedPyramidBlend(const Buffer &a, const Buffer &b, const Buffer &m,
                   int levels)
{
    const std::int64_t R = a.dims()[0], C = a.dims()[1];
    const auto sr = levelSizes(R, levels), sc = levelSizes(C, levels);
    CmpResult res;
    res.output = Buffer(dsl::DType::Float, {R, C});
    PassTimer timer(res.passes);

    // Gaussian pyramids (level 0 aliases the inputs).
    auto build_pyr = [&](const char *tag, const float *base) {
        std::vector<std::vector<float>> pyr{std::size_t(levels)};
        for (int l = 1; l < levels; ++l) {
            const auto szr = std::size_t(l);
            std::vector<float> tmp(
                std::size_t(sr[szr] * sc[szr - 1]));
            pyr[szr].resize(std::size_t(sr[szr] * sc[szr]));
            const float *src =
                l == 1 ? base : pyr[szr - 1].data();
            timer.pass(std::string(tag) + "_down" + std::to_string(l),
                       sr[szr], [&] {
                           downRows(tmp.data(), src, sr[szr],
                                    sc[szr - 1], sc[szr - 1]);
                           downCols(pyr[szr].data(), tmp.data(),
                                    sr[szr], sc[szr], sc[szr - 1]);
                       });
        }
        return pyr;
    };
    const float *A = a.dataAs<const float>();
    const float *B = b.dataAs<const float>();
    const float *M = m.dataAs<const float>();
    auto GA = build_pyr("a", A);
    auto GB = build_pyr("b", B);
    auto GM = build_pyr("m", M);

    auto level_ptr = [&](std::vector<std::vector<float>> &p,
                         const float *base, int l) {
        return l == 0 ? base : p[std::size_t(l)].data();
    };

    // Collapse coarse to fine.
    std::vector<float> cur(
        std::size_t(sr[std::size_t(levels - 1)] *
                    sc[std::size_t(levels - 1)]));
    timer.pass("blend_base", sr[std::size_t(levels - 1)], [&] {
        const int l = levels - 1;
        const float *ga = level_ptr(GA, A, l);
        const float *gb2 = level_ptr(GB, B, l);
        const float *gm = level_ptr(GM, M, l);
        const std::int64_t n = sr[std::size_t(l)] * sc[std::size_t(l)];
#pragma omp parallel for schedule(static)
        for (std::int64_t i = 0; i < n; ++i)
            cur[std::size_t(i)] =
                ga[i] * gm[i] + gb2[i] * (1.0f - gm[i]);
    });

    for (int l = levels - 2; l >= 0; --l) {
        const auto lz = std::size_t(l);
        const std::int64_t r = sr[lz], c = sc[lz];
        const std::int64_t r1 = sr[lz + 1], c1 = sc[lz + 1];
        std::vector<float> upA(std::size_t(r * c)),
            upB(std::size_t(r * c)), upR(std::size_t(r * c)),
            tmp(std::size_t(r * c1)), next(std::size_t(r * c));
        auto upsample = [&](const char *tag, const float *src,
                            float *dst) {
            timer.pass(std::string(tag) + std::to_string(l), r, [&] {
                upRows(tmp.data(), src, r, r1, c1);
                upCols(dst, tmp.data(), r, c, c1);
            });
        };
        upsample("upA", level_ptr(GA, A, l + 1), upA.data());
        upsample("upB", level_ptr(GB, B, l + 1), upB.data());
        upsample("upR", cur.data(), upR.data());
        timer.pass("combine" + std::to_string(l), r, [&] {
            const float *ga = level_ptr(GA, A, l);
            const float *gb2 = level_ptr(GB, B, l);
            const float *gm = level_ptr(GM, M, l);
#pragma omp parallel for schedule(static)
            for (std::int64_t i = 0; i < r * c; ++i) {
                const float lapA = ga[i] - upA[std::size_t(i)];
                const float lapB = gb2[i] - upB[std::size_t(i)];
                next[std::size_t(i)] =
                    lapA * gm[i] + lapB * (1.0f - gm[i]) +
                    upR[std::size_t(i)];
            }
        });
        cur = std::move(next);
    }
    std::copy(cur.begin(), cur.end(), res.output.dataAs<float>());
    return res;
}

//-------------------------------------------------------------------------
// Multiscale interpolation: per-stage passes over the (value, alpha)
// planes (paper: tuned schedule has no fusion).
//-------------------------------------------------------------------------
CmpResult
htunedInterp(const Buffer &in, int levels)
{
    const std::int64_t R = in.dims()[1], C = in.dims()[2];
    const auto sr = levelSizes(R, levels), sc = levelSizes(C, levels);
    CmpResult res;
    res.output = Buffer(dsl::DType::Float, {R, C});
    PassTimer timer(res.passes);

    const float *base = in.dataAs<const float>();
    // down[l] has 2 planes at level l (l >= 1).
    std::vector<std::vector<float>> down{std::size_t(levels)};
    for (int l = 1; l < levels; ++l) {
        const auto lz = std::size_t(l);
        down[lz].resize(std::size_t(2 * sr[lz] * sc[lz]));
        std::vector<float> tmp(std::size_t(sr[lz] * sc[lz - 1]));
        timer.pass("down" + std::to_string(l), 2 * sr[lz], [&] {
            for (int c = 0; c < 2; ++c) {
                const float *src =
                    l == 1 ? base + c * R * C
                           : down[lz - 1].data() +
                                 c * sr[lz - 1] * sc[lz - 1];
                downRows(tmp.data(), src, sr[lz], sc[lz - 1],
                         sc[lz - 1]);
                downCols(down[lz].data() + c * sr[lz] * sc[lz],
                         tmp.data(), sr[lz], sc[lz], sc[lz - 1]);
            }
        });
    }

    std::vector<float> cur = down[std::size_t(levels - 1)];
    for (int l = levels - 2; l >= 0; --l) {
        const auto lz = std::size_t(l);
        const std::int64_t r = sr[lz], c = sc[lz];
        const std::int64_t r1 = sr[lz + 1], c1 = sc[lz + 1];
        std::vector<float> up(std::size_t(2 * r * c));
        std::vector<float> tmp(std::size_t(r * c1));
        timer.pass("up" + std::to_string(l), 2 * r, [&] {
            for (int ch = 0; ch < 2; ++ch) {
                upRows(tmp.data(), cur.data() + ch * r1 * c1, r, r1,
                       c1);
                upCols(up.data() + ch * r * c, tmp.data(), r, c, c1);
            }
        });
        std::vector<float> next(std::size_t(2 * r * c));
        timer.pass("interp" + std::to_string(l), r, [&] {
            const float *lv =
                l == 0 ? base : down[lz].data();
            const float *lalpha =
                l == 0 ? base + R * C : down[lz].data() + r * c;
#pragma omp parallel for schedule(static)
            for (std::int64_t i = 0; i < r * c; ++i) {
                for (int ch = 0; ch < 2; ++ch) {
                    const float v =
                        ch == 0 ? lv[i] : lalpha[i];
                    next[std::size_t(ch * r * c + i)] =
                        v + (1.0f - lalpha[i]) *
                                up[std::size_t(ch * r * c + i)];
                }
            }
        });
        cur = std::move(next);
    }

    timer.pass("normalise", R, [&] {
        float *out = res.output.dataAs<float>();
#pragma omp parallel for schedule(static)
        for (std::int64_t i = 0; i < R * C; ++i) {
            out[i] = cur[std::size_t(i)] /
                     std::max(cur[std::size_t(R * C + i)], 1e-6f);
        }
    });
    return res;
}

//-------------------------------------------------------------------------
// Local Laplacian: per-stage passes; k is an explicit plane loop
// (paper: tuned schedule exploits parallelism/vectorisation only).
//-------------------------------------------------------------------------
CmpResult
htunedLocalLaplacian(const Buffer &in, int levels, int k)
{
    const std::int64_t R = in.dims()[0], C = in.dims()[1];
    const auto sr = levelSizes(R, levels), sc = levelSizes(C, levels);
    CmpResult res;
    res.output = Buffer(dsl::DType::Float, {R, C});
    PassTimer timer(res.passes);

    const float *ip = in.dataAs<const float>();
    const float alpha = 0.25f, beta = 1.0f;

    // Remapped copies: rem[kk] at level 0.
    std::vector<float> remap0(std::size_t(k) * std::size_t(R * C));
    timer.pass("remap", std::int64_t(k) * R, [&] {
#pragma omp parallel for schedule(static)
        for (int kk = 0; kk < k; ++kk) {
            const float lev = float(kk) * (1.0f / float(k - 1));
            float *dst = remap0.data() +
                         std::size_t(kk) * std::size_t(R * C);
            for (std::int64_t i = 0; i < R * C; ++i) {
                const float v = ip[i] - lev;
                dst[std::size_t(i)] =
                    lev + v * beta +
                    v * alpha * std::exp(-(v * v) * 8.0f);
            }
        }
    });

    // Gaussian pyramids of the remapped planes and of the guide.
    std::vector<std::vector<float>> rG{std::size_t(levels)};
    std::vector<std::vector<float>> gG{std::size_t(levels)};
    for (int l = 1; l < levels; ++l) {
        const auto lz = std::size_t(l);
        const std::int64_t r = sr[lz], c = sc[lz];
        rG[lz].resize(std::size_t(k) * std::size_t(r * c));
        gG[lz].resize(std::size_t(r * c));
        std::vector<float> tmp(std::size_t(r * sc[lz - 1]));
        timer.pass("pyr" + std::to_string(l), std::int64_t(k + 1) * r,
                   [&] {
                       for (int kk = 0; kk < k; ++kk) {
                           const float *src =
                               l == 1 ? remap0.data() +
                                            std::size_t(kk) *
                                                std::size_t(R * C)
                                      : rG[lz - 1].data() +
                                            std::size_t(kk) *
                                                std::size_t(
                                                    sr[lz - 1] *
                                                    sc[lz - 1]);
                           downRows(tmp.data(), src, r, sc[lz - 1],
                                    sc[lz - 1]);
                           downCols(rG[lz].data() +
                                        std::size_t(kk) *
                                            std::size_t(r * c),
                                    tmp.data(), r, c, sc[lz - 1]);
                       }
                       const float *gsrc =
                           l == 1 ? ip : gG[lz - 1].data();
                       downRows(tmp.data(), gsrc, r, sc[lz - 1],
                                sc[lz - 1]);
                       downCols(gG[lz].data(), tmp.data(), r, c,
                                sc[lz - 1]);
                   });
    }

    auto guide = [&](int l) {
        return l == 0 ? ip : gG[std::size_t(l)].data();
    };
    auto rem = [&](int l, int kk) {
        return (l == 0 ? remap0.data() +
                             std::size_t(kk) * std::size_t(R * C)
                       : rG[std::size_t(l)].data() +
                             std::size_t(kk) *
                                 std::size_t(sr[std::size_t(l)] *
                                             sc[std::size_t(l)]));
    };

    // outLap levels.
    std::vector<std::vector<float>> outLap{std::size_t(levels)};
    for (int l = 0; l < levels; ++l) {
        const auto lz = std::size_t(l);
        const std::int64_t r = sr[lz], c = sc[lz];
        outLap[lz].resize(std::size_t(r * c));
        std::vector<float> up(std::size_t(k) * std::size_t(r * c));
        if (l < levels - 1) {
            std::vector<float> tmp(std::size_t(r * sc[lz + 1]));
            timer.pass("lapup" + std::to_string(l),
                       std::int64_t(k) * r, [&] {
                           for (int kk = 0; kk < k; ++kk) {
                               upRows(tmp.data(), rem(l + 1, kk), r,
                                      sr[lz + 1], sc[lz + 1]);
                               upCols(up.data() + std::size_t(kk) *
                                                      std::size_t(r *
                                                                  c),
                                      tmp.data(), r, c, sc[lz + 1]);
                           }
                       });
        }
        timer.pass("outlap" + std::to_string(l), r, [&] {
            const float *g = guide(l);
            float *dst = outLap[lz].data();
#pragma omp parallel for schedule(static)
            for (std::int64_t i = 0; i < r * c; ++i) {
                const float gv =
                    std::max(0.0f, std::min(1.0f, g[i]));
                const float kf = gv * float(k - 1);
                const int ki = std::max(
                    0, std::min(k - 2, int(kf)));
                const float t = kf - float(ki);
                auto sample = [&](int kk) {
                    const float rv =
                        rem(l, kk)[std::size_t(i)];
                    if (l == levels - 1)
                        return rv;
                    return rv - up[std::size_t(kk) *
                                       std::size_t(r * c) +
                                   std::size_t(i)];
                };
                dst[std::size_t(i)] = sample(ki) * (1.0f - t) +
                                      sample(ki + 1) * t;
            }
        });
    }

    // Collapse.
    std::vector<float> cur = outLap[std::size_t(levels - 1)];
    for (int l = levels - 2; l >= 0; --l) {
        const auto lz = std::size_t(l);
        const std::int64_t r = sr[lz], c = sc[lz];
        std::vector<float> up(std::size_t(r * c));
        std::vector<float> tmp(std::size_t(r * sc[lz + 1]));
        timer.pass("collapse" + std::to_string(l), r, [&] {
            upRows(tmp.data(), cur.data(), r, sr[lz + 1], sc[lz + 1]);
            upCols(up.data(), tmp.data(), r, c, sc[lz + 1]);
            std::vector<float> next(std::size_t(r * c));
#pragma omp parallel for schedule(static)
            for (std::int64_t i = 0; i < r * c; ++i) {
                next[std::size_t(i)] = outLap[lz][std::size_t(i)] +
                                       up[std::size_t(i)];
            }
            cur = std::move(next);
        });
    }
    std::copy(cur.begin(), cur.end(), res.output.dataAs<float>());
    return res;
}

//-------------------------------------------------------------------------
// OpenCV-library-style versions: one full-buffer routine per step.
//-------------------------------------------------------------------------
CmpResult
libstyleUnsharp(const Buffer &in_rgb)
{
    const std::int64_t rows = in_rgb.dims()[1];
    const std::int64_t cols = in_rgb.dims()[2];
    const std::int64_t R = rows - 4, C = cols - 4;
    CmpResult res;
    res.output = Buffer(dsl::DType::Float, {3, rows, cols});
    PassTimer timer(res.passes);

    const float *in = in_rgb.dataAs<const float>();
    float *out = res.output.dataAs<float>();
    std::vector<float> blury(std::size_t(rows * cols));
    std::vector<float> blurx(std::size_t(rows * cols));

    for (int c = 0; c < 3; ++c) {
        const float *ip = in + c * rows * cols;
        float *op = out + c * rows * cols;
        timer.pass("GaussianBlurY", R, [&] {
#pragma omp parallel for schedule(static)
            for (std::int64_t x = 2; x <= R + 1; ++x) {
                for (std::int64_t y = 0; y < cols; ++y) {
                    blury[std::size_t(x * cols + y)] =
                        ip[(x - 2) * cols + y] * (1.f / 16) +
                        ip[(x - 1) * cols + y] * (4.f / 16) +
                        ip[x * cols + y] * (6.f / 16) +
                        ip[(x + 1) * cols + y] * (4.f / 16) +
                        ip[(x + 2) * cols + y] * (1.f / 16);
                }
            }
        });
        timer.pass("GaussianBlurX", R, [&] {
#pragma omp parallel for schedule(static)
            for (std::int64_t x = 2; x <= R + 1; ++x) {
                for (std::int64_t y = 2; y <= C + 1; ++y) {
                    blurx[std::size_t(x * cols + y)] =
                        blury[std::size_t(x * cols + y - 2)] *
                            (1.f / 16) +
                        blury[std::size_t(x * cols + y - 1)] *
                            (4.f / 16) +
                        blury[std::size_t(x * cols + y)] * (6.f / 16) +
                        blury[std::size_t(x * cols + y + 1)] *
                            (4.f / 16) +
                        blury[std::size_t(x * cols + y + 2)] *
                            (1.f / 16);
                }
            }
        });
        timer.pass("addWeightedSelect", R, [&] {
#pragma omp parallel for schedule(static)
            for (std::int64_t x = 2; x <= R + 1; ++x) {
                for (std::int64_t y = 2; y <= C + 1; ++y) {
                    const float s = ip[x * cols + y];
                    const float bl = blurx[std::size_t(x * cols + y)];
                    const float sharpen = s * 4.0f - bl * 3.0f;
                    op[x * cols + y] =
                        std::fabs(s - bl) < 0.01f ? s : sharpen;
                }
            }
        });
    }
    return res;
}

CmpResult
libstyleHarris(const Buffer &in)
{
    const std::int64_t rows = in.dims()[0], cols = in.dims()[1];
    const std::int64_t R = rows - 2, C = cols - 2;
    CmpResult res;
    res.output = Buffer(dsl::DType::Float, {rows, cols});
    PassTimer timer(res.passes);

    const float *ip = in.dataAs<const float>();
    const std::size_t n = std::size_t(rows * cols);
    std::vector<float> Ix(n), Iy(n), Ixx(n), Iyy(n), Ixy(n), Sxx(n),
        Syy(n), Sxy(n);

    auto sobel = [&](const char *name, float *dst, bool horiz) {
        timer.pass(name, R, [&] {
#pragma omp parallel for schedule(static)
            for (std::int64_t x = 1; x <= R; ++x) {
                for (std::int64_t y = 1; y <= C; ++y) {
                    const float *s0 = ip + (x - 1) * cols;
                    const float *s1 = ip + x * cols;
                    const float *s2 = ip + (x + 1) * cols;
                    dst[std::size_t(x * cols + y)] =
                        horiz ? (-s0[y - 1] + s0[y + 1] -
                                 2 * s1[y - 1] + 2 * s1[y + 1] -
                                 s2[y - 1] + s2[y + 1]) *
                                    (1.0f / 12)
                              : (-s0[y - 1] - 2 * s0[y] - s0[y + 1] +
                                 s2[y - 1] + 2 * s2[y] + s2[y + 1]) *
                                    (1.0f / 12);
                }
            }
        });
    };
    sobel("SobelX", Ix.data(), true);
    sobel("SobelY", Iy.data(), false);

    auto mul = [&](const char *name, float *dst, const float *a,
                   const float *b) {
        timer.pass(name, R, [&] {
#pragma omp parallel for schedule(static)
            for (std::int64_t i = 0; i < rows * cols; ++i)
                dst[std::size_t(i)] = a[std::size_t(i)] *
                                      b[std::size_t(i)];
        });
    };
    mul("mulXX", Ixx.data(), Ix.data(), Ix.data());
    mul("mulYY", Iyy.data(), Iy.data(), Iy.data());
    mul("mulXY", Ixy.data(), Ix.data(), Iy.data());

    auto box = [&](const char *name, float *dst, const float *src) {
        timer.pass(name, R - 2, [&] {
#pragma omp parallel for schedule(static)
            for (std::int64_t x = 2; x <= R - 1; ++x) {
                for (std::int64_t y = 2; y <= C - 1; ++y) {
                    float s = 0;
                    for (int dx = -1; dx <= 1; ++dx)
                        for (int dy = -1; dy <= 1; ++dy)
                            s += src[std::size_t((x + dx) * cols + y +
                                                 dy)];
                    dst[std::size_t(x * cols + y)] = s;
                }
            }
        });
    };
    box("boxXX", Sxx.data(), Ixx.data());
    box("boxYY", Syy.data(), Iyy.data());
    box("boxXY", Sxy.data(), Ixy.data());

    timer.pass("response", R - 2, [&] {
        float *out = res.output.dataAs<float>();
#pragma omp parallel for schedule(static)
        for (std::int64_t x = 2; x <= R - 1; ++x) {
            for (std::int64_t y = 2; y <= C - 1; ++y) {
                const std::size_t i = std::size_t(x * cols + y);
                const float det =
                    Sxx[i] * Syy[i] - Sxy[i] * Sxy[i];
                const float trace = Sxx[i] + Syy[i];
                out[x * cols + y] = det - 0.04f * trace * trace;
            }
        }
    });
    return res;
}

CmpResult
libstylePyramidBlend(const Buffer &a, const Buffer &b, const Buffer &m,
                     int levels)
{
    // Library style: the same per-stage structure as the tuned version
    // (pyrDown/pyrUp routines), with the arithmetic as separate passes.
    return htunedPyramidBlend(a, b, m, levels);
}

} // namespace PM_CMP_NS
} // namespace polymage::cmp
