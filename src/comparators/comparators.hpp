/**
 * @file
 * Comparator implementations standing in for the paper's Halide and
 * OpenCV baselines (§4).  Halide itself is not available offline, so
 * `htuned*` are hand-written C++/OpenMP kernels with the loop structure
 * the paper describes for each H-tuned schedule (per-stage parallel,
 * vectorised inner loops, the same limited fusion choices);
 * `libstyle*` mimic OpenCV usage: one full-buffer library routine per
 * step with no cross-routine fusion.
 *
 * Every comparator matches the corresponding DSL pipeline's output
 * bit-tolerantly (verified by tests), so performance comparisons are
 * apples to apples.
 *
 * Each returns per-pass timings used by the multicore scaling model:
 * a pass with parallelIters > 1 scales as ceil(iters/p)/iters.
 */
#ifndef POLYMAGE_COMPARATORS_COMPARATORS_HPP
#define POLYMAGE_COMPARATORS_COMPARATORS_HPP

#include <string>
#include <vector>

#include "runtime/buffer.hpp"

namespace polymage::cmp {

/** One timed pass of a comparator. */
struct StagePass
{
    std::string name;
    double seconds = 0.0;
    /** Outer parallel iterations; 1 marks an inherently serial pass. */
    std::int64_t parallelIters = 1;
};

/** Output plus the pass profile. */
struct CmpResult
{
    rt::Buffer output;
    std::vector<StagePass> passes;

    double
    totalSeconds() const
    {
        double t = 0;
        for (const auto &p : passes)
            t += p.seconds;
        return t;
    }
};

/**
 * Modelled wall time on @p workers workers: barrier-separated passes,
 * each scaling by ceil(iters/p)/iters (serial passes unchanged).
 */
double modeledTime(const std::vector<StagePass> &passes, int workers);

/// @name Halide-tuned-style comparators (paper's H-tuned column)
/// @{
CmpResult htunedUnsharp(const rt::Buffer &in_rgb, bool vectorize);
CmpResult htunedHarris(const rt::Buffer &in, bool vectorize);
CmpResult htunedBilateral(const rt::Buffer &in, bool vectorize);
CmpResult htunedCamera(const rt::Buffer &raw, bool vectorize);
CmpResult htunedPyramidBlend(const rt::Buffer &a, const rt::Buffer &b,
                             const rt::Buffer &m, int levels,
                             bool vectorize);
CmpResult htunedInterp(const rt::Buffer &in, int levels, bool vectorize);
CmpResult htunedLocalLaplacian(const rt::Buffer &in, int levels, int k,
                               bool vectorize);
/// @}

/// @name OpenCV-library-style comparators (paper's OpenCV column)
/// @{
CmpResult libstyleUnsharp(const rt::Buffer &in_rgb);
CmpResult libstyleHarris(const rt::Buffer &in);
CmpResult libstylePyramidBlend(const rt::Buffer &a, const rt::Buffer &b,
                               const rt::Buffer &m, int levels);
/// @}

} // namespace polymage::cmp

#endif // POLYMAGE_COMPARATORS_COMPARATORS_HPP
