/**
 * @file
 * Dispatch layer selecting the vectorised or non-vectorised comparator
 * kernel bodies (see comparators_impl.cpp, compiled twice), plus the
 * barrier-aware scaling model shared with the benchmark harnesses.
 */
#include "comparators/comparators.hpp"

#include "support/intmath.hpp"

namespace polymage::cmp {

// The kernel bodies exist in two namespaces with identical signatures.
#define PM_DECLARE_IMPLS(ns)                                              \
    namespace ns {                                                        \
    CmpResult htunedUnsharp(const rt::Buffer &);                          \
    CmpResult htunedHarris(const rt::Buffer &);                           \
    CmpResult htunedBilateral(const rt::Buffer &);                        \
    CmpResult htunedCamera(const rt::Buffer &);                           \
    CmpResult htunedPyramidBlend(const rt::Buffer &, const rt::Buffer &, \
                                 const rt::Buffer &, int);                \
    CmpResult htunedInterp(const rt::Buffer &, int);                      \
    CmpResult htunedLocalLaplacian(const rt::Buffer &, int, int);         \
    CmpResult libstyleUnsharp(const rt::Buffer &);                        \
    CmpResult libstyleHarris(const rt::Buffer &);                         \
    CmpResult libstylePyramidBlend(const rt::Buffer &,                    \
                                   const rt::Buffer &,                    \
                                   const rt::Buffer &, int);              \
    }

PM_DECLARE_IMPLS(vec_impl)
PM_DECLARE_IMPLS(novec_impl)
#undef PM_DECLARE_IMPLS

double
modeledTime(const std::vector<StagePass> &passes, int workers)
{
    PM_ASSERT(workers >= 1, "worker count must be positive");
    double total = 0.0;
    for (const auto &p : passes) {
        if (p.parallelIters <= 1 || workers == 1) {
            total += p.seconds;
        } else {
            const double chunks = double(
                ceilDiv(p.parallelIters, workers));
            total += p.seconds * chunks / double(p.parallelIters);
        }
    }
    return total;
}

CmpResult
htunedUnsharp(const rt::Buffer &in_rgb, bool vectorize)
{
    return vectorize ? vec_impl::htunedUnsharp(in_rgb)
                     : novec_impl::htunedUnsharp(in_rgb);
}

CmpResult
htunedHarris(const rt::Buffer &in, bool vectorize)
{
    return vectorize ? vec_impl::htunedHarris(in)
                     : novec_impl::htunedHarris(in);
}

CmpResult
htunedBilateral(const rt::Buffer &in, bool vectorize)
{
    return vectorize ? vec_impl::htunedBilateral(in)
                     : novec_impl::htunedBilateral(in);
}

CmpResult
htunedCamera(const rt::Buffer &raw, bool vectorize)
{
    return vectorize ? vec_impl::htunedCamera(raw)
                     : novec_impl::htunedCamera(raw);
}

CmpResult
htunedPyramidBlend(const rt::Buffer &a, const rt::Buffer &b,
                   const rt::Buffer &m, int levels, bool vectorize)
{
    return vectorize ? vec_impl::htunedPyramidBlend(a, b, m, levels)
                     : novec_impl::htunedPyramidBlend(a, b, m, levels);
}

CmpResult
htunedInterp(const rt::Buffer &in, int levels, bool vectorize)
{
    return vectorize ? vec_impl::htunedInterp(in, levels)
                     : novec_impl::htunedInterp(in, levels);
}

CmpResult
htunedLocalLaplacian(const rt::Buffer &in, int levels, int k,
                     bool vectorize)
{
    return vectorize ? vec_impl::htunedLocalLaplacian(in, levels, k)
                     : novec_impl::htunedLocalLaplacian(in, levels, k);
}

CmpResult
libstyleUnsharp(const rt::Buffer &in_rgb)
{
    return vec_impl::libstyleUnsharp(in_rgb);
}

CmpResult
libstyleHarris(const rt::Buffer &in)
{
    return vec_impl::libstyleHarris(in);
}

CmpResult
libstylePyramidBlend(const rt::Buffer &a, const rt::Buffer &b,
                     const rt::Buffer &m, int levels)
{
    return vec_impl::libstylePyramidBlend(a, b, m, levels);
}

} // namespace polymage::cmp
