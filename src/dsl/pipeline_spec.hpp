/**
 * @file
 * A complete pipeline specification: the live-out functions plus
 * parameter estimates used by the grouping heuristic (paper §3.5: "the
 * user has an idea of the range of image dimensions ...").
 */
#ifndef POLYMAGE_DSL_PIPELINE_SPEC_HPP
#define POLYMAGE_DSL_PIPELINE_SPEC_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dsl/function.hpp"
#include "dsl/image.hpp"
#include "dsl/reduction.hpp"

namespace polymage::dsl {

/**
 * One frame-delay tap created by dsl::prev() (docs/STREAMING.md): a
 * synthetic input image standing for a source stage's (or input
 * image's) value @p delay frames ago.  Exactly one of source /
 * sourceImage is set.
 */
struct DelayBinding
{
    /** Synthetic input standing for the source's value at t-k. */
    std::shared_ptr<const ImageData> tap;
    /** Delayed Function source (null when the source is an image). */
    CallablePtr source;
    /** Delayed input-image source (null for a Function source). */
    std::shared_ptr<const ImageData> sourceImage;
    /** Frames of delay (k >= 1). */
    int delay = 1;

    int sourceId() const
    {
        return source ? source->id() : sourceImage->id();
    }
};

/**
 * User-facing description of a pipeline handed to the compiler: a name,
 * the live-out stages, and estimates for the pipeline parameters.  The
 * generated implementation remains valid for all parameter values; the
 * estimates only steer the grouping heuristic.
 */
class PipelineSpec
{
  public:
    explicit PipelineSpec(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    /** Mark a function as a live-out (pipeline output). */
    void addOutput(const Function &f) { outputs_.push_back(f.data()); }
    /** Mark an accumulator as a live-out. */
    void addOutput(const Accumulator &a) { outputs_.push_back(a.data()); }

    const std::vector<CallablePtr> &outputs() const { return outputs_; }

    /**
     * Register a scalar parameter.  Registration order defines the
     * parameter order of the generated entry point; parameters that are
     * used but not registered are appended in discovery order.
     */
    void addParam(const Parameter &p) { params_.push_back(p.data()); }

    /** Register an input image; order defines the entry-point ABI. */
    void addInput(const Image &img) { inputs_.push_back(img.data()); }

    /// @name Pass-author interface (used by compiler rewrites)
    /// @{
    void addOutput(CallablePtr c) { outputs_.push_back(std::move(c)); }
    void
    addParam(std::shared_ptr<const ParamData> p)
    {
        params_.push_back(std::move(p));
    }
    void
    addInput(std::shared_ptr<const ImageData> img)
    {
        inputs_.push_back(std::move(img));
    }
    void estimateById(int id, std::int64_t v) { estimates_[id] = v; }
    /// @}

    const std::vector<std::shared_ptr<const ParamData>> &params() const
    {
        return params_;
    }

    const std::vector<std::shared_ptr<const ImageData>> &inputs() const
    {
        return inputs_;
    }

    /** Provide an approximate value for a parameter (e.g. image width). */
    void
    estimate(const Parameter &p, std::int64_t value)
    {
        estimates_[p.data()->id] = value;
    }

    /** Estimate for the parameter id, or @p fallback if none given. */
    std::int64_t
    estimateFor(int param_id, std::int64_t fallback = 1024) const
    {
        auto it = estimates_.find(param_id);
        return it == estimates_.end() ? fallback : it->second;
    }

    const std::map<int, std::int64_t> &estimates() const
    {
        return estimates_;
    }

    /// @name Streaming (frame-delay) axis -- see docs/STREAMING.md
    /// @{
    /**
     * Declare the maximum frame delay dsl::prev() may reference.
     * Must be called (with k >= 1) before the first prev(); bounds
     * the per-stage ring-buffer depth at k+1 slots.
     */
    void setMaxDelay(int frames);
    /** Declared maximum delay; 0 when the pipeline is single-frame. */
    int maxDelay() const { return maxDelay_; }
    /** True when any frame-delay tap exists. */
    bool isStreaming() const { return !delays_.empty(); }
    const std::vector<DelayBinding> &delays() const { return delays_; }
    /** Used by dsl::prev(); validates against the declared maximum. */
    void addDelay(DelayBinding b);
    /// @}

  private:
    std::string name_;
    std::vector<CallablePtr> outputs_;
    std::vector<std::shared_ptr<const ParamData>> params_;
    std::vector<std::shared_ptr<const ImageData>> inputs_;
    std::map<int, std::int64_t> estimates_;
    int maxDelay_ = 0;
    std::vector<DelayBinding> delays_;
};

} // namespace polymage::dsl

#endif // POLYMAGE_DSL_PIPELINE_SPEC_HPP
