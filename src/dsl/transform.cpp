#include "dsl/transform.hpp"

namespace polymage::dsl {

namespace {

using RewriteCache = std::map<const ExprNode *, Expr>;

Expr rewriteCached(const Expr &e, const RewriteFn &fn,
                   RewriteCache &cache);

Condition
rewriteCondCached(const Condition &c, const RewriteFn &fn,
                  RewriteCache &cache)
{
    const CondNode &n = c.node();
    if (n.kind == CondNode::Kind::Cmp) {
        return Condition::cmp(rewriteCached(n.lhs, fn, cache), n.op,
                              rewriteCached(n.rhs, fn, cache));
    }
    Condition ca = rewriteCondCached(Condition(n.a), fn, cache);
    Condition cb = rewriteCondCached(Condition(n.b), fn, cache);
    return n.kind == CondNode::Kind::And ? (ca & cb) : (ca | cb);
}

/**
 * Memoised rewrite: expression trees are DAGs (shared subtrees, e.g.
 * the corner coordinates of an interpolation); rewriting a shared node
 * once keeps the sharing intact, which downstream code generation
 * exploits for common-subexpression temporaries.
 */
Expr
rewriteCached(const Expr &e, const RewriteFn &fn, RewriteCache &cache)
{
    auto hit = cache.find(&e.node());
    if (hit != cache.end())
        return hit->second;
    const ExprNode &n = e.node();
    Expr rebuilt;
    switch (n.kind()) {
      case ExprKind::ConstInt:
      case ExprKind::ConstFloat:
      case ExprKind::VarRef:
      case ExprKind::ParamRef:
        rebuilt = e;
        break;
      case ExprKind::Call: {
        const auto &c = static_cast<const CallNode &>(n);
        std::vector<Expr> args;
        args.reserve(c.args.size());
        for (const auto &a : c.args)
            args.push_back(rewriteCached(a, fn, cache));
        rebuilt = Expr(std::make_shared<CallNode>(c.callee,
                                                  std::move(args)));
        break;
      }
      case ExprKind::BinOp: {
        const auto &b = static_cast<const BinOpNode &>(n);
        Expr a = rewriteCached(b.a, fn, cache);
        Expr c = rewriteCached(b.b, fn, cache);
        rebuilt = Expr(std::make_shared<BinOpNode>(
            b.op, std::move(a), std::move(c), n.dtype()));
        break;
      }
      case ExprKind::UnOp: {
        const auto &u = static_cast<const UnOpNode &>(n);
        rebuilt = Expr(std::make_shared<UnOpNode>(
            u.op, rewriteCached(u.a, fn, cache), n.dtype()));
        break;
      }
      case ExprKind::Cast: {
        const auto &c = static_cast<const CastNode &>(n);
        rebuilt = Expr(std::make_shared<CastNode>(
            n.dtype(), rewriteCached(c.a, fn, cache)));
        break;
      }
      case ExprKind::Select: {
        const auto &s = static_cast<const SelectNode &>(n);
        rebuilt = Expr(std::make_shared<SelectNode>(
            rewriteCondCached(s.cond, fn, cache),
            rewriteCached(s.t, fn, cache),
            rewriteCached(s.f, fn, cache), n.dtype()));
        break;
      }
      case ExprKind::MathFn: {
        const auto &m = static_cast<const MathFnNode &>(n);
        std::vector<Expr> args;
        args.reserve(m.args.size());
        for (const auto &a : m.args)
            args.push_back(rewriteCached(a, fn, cache));
        rebuilt = Expr(std::make_shared<MathFnNode>(m.fn, std::move(args),
                                                    n.dtype()));
        break;
      }
    }
    if (auto repl = fn(rebuilt.node())) {
        cache.emplace(&n, *repl);
        return *repl;
    }
    cache.emplace(&n, rebuilt);
    return rebuilt;
}

} // namespace

Expr
rewriteExpr(const Expr &e, const RewriteFn &fn)
{
    RewriteCache cache;
    return rewriteCached(e, fn, cache);
}

Condition
rewriteCondition(const Condition &c, const RewriteFn &fn)
{
    RewriteCache cache;
    return rewriteCondCached(c, fn, cache);
}


Expr
substituteVars(const Expr &e, const std::map<int, Expr> &subst)
{
    return rewriteExpr(e, [&](const ExprNode &n) -> std::optional<Expr> {
        if (n.kind() != ExprKind::VarRef)
            return std::nullopt;
        auto it = subst.find(static_cast<const VarRefNode &>(n).var->id);
        if (it == subst.end())
            return std::nullopt;
        return it->second;
    });
}

Condition
substituteVars(const Condition &c, const std::map<int, Expr> &subst)
{
    return rewriteCondition(
        c, [&](const ExprNode &n) -> std::optional<Expr> {
            if (n.kind() != ExprKind::VarRef)
                return std::nullopt;
            auto it =
                subst.find(static_cast<const VarRefNode &>(n).var->id);
            if (it == subst.end())
                return std::nullopt;
            return it->second;
        });
}

int
countNodes(const Expr &e)
{
    int count = 0;
    forEachNode(e, [&](const ExprNode &) { ++count; });
    return count;
}

} // namespace polymage::dsl
