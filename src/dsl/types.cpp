#include "dsl/types.hpp"

#include "support/diagnostics.hpp"

namespace polymage::dsl {

std::size_t
dtypeSize(DType t)
{
    switch (t) {
      case DType::UChar: return 1;
      case DType::Short: return 2;
      case DType::UShort: return 2;
      case DType::Int: return 4;
      case DType::Long: return 8;
      case DType::Float: return 4;
      case DType::Double: return 8;
    }
    internalError("unknown dtype");
}

const char *
dtypeCName(DType t)
{
    switch (t) {
      case DType::UChar: return "unsigned char";
      case DType::Short: return "short";
      case DType::UShort: return "unsigned short";
      case DType::Int: return "int";
      case DType::Long: return "long long";
      case DType::Float: return "float";
      case DType::Double: return "double";
    }
    internalError("unknown dtype");
}

const char *
dtypeName(DType t)
{
    switch (t) {
      case DType::UChar: return "UChar";
      case DType::Short: return "Short";
      case DType::UShort: return "UShort";
      case DType::Int: return "Int";
      case DType::Long: return "Long";
      case DType::Float: return "Float";
      case DType::Double: return "Double";
    }
    internalError("unknown dtype");
}

bool
dtypeIsFloat(DType t)
{
    return t == DType::Float || t == DType::Double;
}

bool
dtypeIsSignedInt(DType t)
{
    return t == DType::Short || t == DType::Int || t == DType::Long;
}

int
dtypeRank(DType t)
{
    switch (t) {
      case DType::UChar: return 0;
      case DType::Short: return 1;
      case DType::UShort: return 2;
      case DType::Int: return 3;
      case DType::Long: return 4;
      case DType::Float: return 5;
      case DType::Double: return 6;
    }
    internalError("unknown dtype");
}

DType
dtypePromote(DType a, DType b)
{
    if (a == b)
        return a;
    DType hi = dtypeRank(a) >= dtypeRank(b) ? a : b;
    // Mixed narrow integer arithmetic widens to Int, as in C.
    if (!dtypeIsFloat(hi) && dtypeRank(hi) < dtypeRank(DType::Int))
        return DType::Int;
    return hi;
}

} // namespace polymage::dsl
