#include "dsl/stencil.hpp"

#include "support/diagnostics.hpp"

namespace polymage::dsl {

namespace {

/** Fold term into sum, skipping the initial undefined accumulator. */
void
addTerm(Expr &sum, Expr term)
{
    sum = sum.defined() ? sum + term : term;
}

Expr
weightTerm(Expr value, double w)
{
    if (w == 1.0)
        return value;
    if (w == -1.0)
        return -value;
    return value * Expr(w);
}

/** p + off rendered without the redundant "+ 0" / "+ -k" forms. */
Expr
offsetIndex(Expr p, std::int64_t off)
{
    if (off == 0)
        return p;
    if (off < 0)
        return std::move(p) - Expr(-off);
    return std::move(p) + Expr(off);
}

} // namespace

Expr
stencil(const std::function<Expr(Expr, Expr)> &access, Expr x, Expr y,
        const std::vector<std::vector<double>> &weights, double scale)
{
    if (weights.empty() || weights[0].empty())
        specError("stencil with empty weight matrix");
    const std::size_t rows = weights.size();
    const std::size_t cols = weights[0].size();
    for (const auto &r : weights) {
        if (r.size() != cols)
            specError("stencil weight matrix is not rectangular");
    }
    if (rows % 2 == 0 || cols % 2 == 0)
        specError("stencil weight matrix extents must be odd");

    const std::int64_t ci = std::int64_t(rows) / 2;
    const std::int64_t cj = std::int64_t(cols) / 2;
    Expr sum;
    for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t j = 0; j < cols; ++j) {
            const double w = weights[i][j];
            if (w == 0.0)
                continue;
            Expr xi = offsetIndex(x, std::int64_t(i) - ci);
            Expr yj = offsetIndex(y, std::int64_t(j) - cj);
            addTerm(sum, weightTerm(access(xi, yj), w));
        }
    }
    if (!sum.defined())
        specError("stencil with all-zero weights");
    if (scale != 1.0)
        sum = sum * Expr(scale);
    return sum;
}

Expr
stencil1d(const std::function<Expr(Expr)> &access, Expr p,
          const std::vector<double> &weights, double scale)
{
    if (weights.empty())
        specError("stencil with empty weight vector");
    if (weights.size() % 2 == 0)
        specError("stencil weight vector length must be odd");

    const std::int64_t c = std::int64_t(weights.size()) / 2;
    Expr sum;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const double w = weights[i];
        if (w == 0.0)
            continue;
        addTerm(sum,
                weightTerm(access(offsetIndex(p, std::int64_t(i) - c)), w));
    }
    if (!sum.defined())
        specError("stencil with all-zero weights");
    if (scale != 1.0)
        sum = sum * Expr(scale);
    return sum;
}

} // namespace polymage::dsl
