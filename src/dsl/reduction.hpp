/**
 * @file
 * The Accumulator construct (paper §2, Fig. 3): a function-like entity
 * with state, evaluated over a reduction domain while being defined on a
 * variable domain.  Expresses histograms and other reductions.
 */
#ifndef POLYMAGE_DSL_REDUCTION_HPP
#define POLYMAGE_DSL_REDUCTION_HPP

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dsl/expr.hpp"
#include "dsl/function.hpp"

namespace polymage::dsl {

/** Combining operator of an accumulation. */
enum class ReduceOp { Sum, Product, Min, Max };

/** Identity element of a reduce op for the given type, as an Expr. */
Expr reduceIdentity(ReduceOp op, DType t);

/** Shared payload of an Accumulator handle. */
class AccumData : public CallableData
{
  public:
    AccumData(std::string name, DType dtype, std::vector<Variable> var_vars,
              std::vector<Interval> var_dom, std::vector<Variable> red_vars,
              std::vector<Interval> red_dom)
        : CallableData(Kind::Accumulator, std::move(name), dtype),
          varVars_(std::move(var_vars)), varDom_(std::move(var_dom)),
          redVars_(std::move(red_vars)), redDom_(std::move(red_dom))
    {}

    int numDims() const override { return int(varVars_.size()); }

    const std::vector<Variable> &varVars() const { return varVars_; }
    const std::vector<Interval> &varDom() const { return varDom_; }
    const std::vector<Variable> &redVars() const { return redVars_; }
    const std::vector<Interval> &redDom() const { return redDom_; }

    const std::vector<Expr> &targetIndices() const { return target_; }
    const Expr &update() const { return update_; }
    ReduceOp op() const { return op_; }
    const Expr &init() const { return init_; }
    const std::optional<Condition> &guard() const { return guard_; }
    bool isDefined() const { return update_.defined(); }

    void
    setAccumulation(std::vector<Expr> target, Expr update, ReduceOp op,
                    Expr init, std::optional<Condition> guard)
    {
        target_ = std::move(target);
        update_ = std::move(update);
        op_ = op;
        init_ = std::move(init);
        guard_ = std::move(guard);
    }

  private:
    std::vector<Variable> varVars_;
    std::vector<Interval> varDom_;
    std::vector<Variable> redVars_;
    std::vector<Interval> redDom_;
    std::vector<Expr> target_;
    Expr update_;
    ReduceOp op_ = ReduceOp::Sum;
    Expr init_;
    std::optional<Condition> guard_;
};

/**
 * Handle to an accumulator.  Example (grayscale histogram, Fig. 3):
 * @code
 *   Accumulator hist("hist", {x}, {bins}, {i, j}, {rows, cols}, Int);
 *   hist.accumulate({I(i, j)}, 1, ReduceOp::Sum);
 * @endcode
 * The evaluation iterates the reduction domain (i, j); each iteration
 * combines the update value into the accumulator cell addressed by the
 * target index expressions.
 */
class Accumulator
{
  public:
    Accumulator(std::string name, std::vector<Variable> var_vars,
                std::vector<Interval> var_dom,
                std::vector<Variable> red_vars,
                std::vector<Interval> red_dom, DType dtype);

    const std::string &name() const { return data_->name(); }
    DType dtype() const { return data_->dtype(); }
    int numDims() const { return data_->numDims(); }

    /**
     * Define the accumulation.
     *
     * @param target index expressions (over the reduction variables)
     *               addressing the accumulator cell to update
     * @param update value combined into the cell
     * @param op combining operator
     * @param init initial cell value; defaults to the op identity
     * @param guard optional condition restricting the reduction domain
     */
    void accumulate(std::vector<Expr> target, Expr update,
                    ReduceOp op = ReduceOp::Sum, Expr init = Expr(),
                    std::optional<Condition> guard = std::nullopt);

    bool isDefined() const { return data_->isDefined(); }

    /** Reference the accumulator's (final) value at the coordinates. */
    Expr operator()(std::vector<Expr> args) const;

    template <typename... E>
    Expr
    operator()(E &&...args) const
    {
        return (*this)(std::vector<Expr>{Expr(std::forward<E>(args))...});
    }

    std::shared_ptr<AccumData> data() const { return data_; }

    bool operator==(const Accumulator &o) const { return data_ == o.data_; }

  private:
    std::shared_ptr<AccumData> data_;
};

} // namespace polymage::dsl

#endif // POLYMAGE_DSL_REDUCTION_HPP
