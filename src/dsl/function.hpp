/**
 * @file
 * The Function construct: a mapping from a multi-dimensional integer
 * domain to scalar values, optionally defined piecewise through Cases
 * (paper §2).  Also defines Interval (variable ranges) and Case.
 */
#ifndef POLYMAGE_DSL_FUNCTION_HPP
#define POLYMAGE_DSL_FUNCTION_HPP

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dsl/expr.hpp"

namespace polymage::dsl {

/**
 * Range of a function dimension: lower and upper bound (inclusive) as
 * affine expressions of parameters and constants, plus a step.  Only
 * step 1 is accepted by the compiler.
 */
class Interval
{
  public:
    Interval() = default;
    Interval(Expr lower, Expr upper, std::int64_t step = 1)
        : lower_(std::move(lower)), upper_(std::move(upper)), step_(step)
    {}

    const Expr &lower() const { return lower_; }
    const Expr &upper() const { return upper_; }
    std::int64_t step() const { return step_; }

  private:
    Expr lower_, upper_;
    std::int64_t step_ = 1;
};

/** One piece of a piecewise function definition. */
class Case
{
  public:
    /** Guarded piece: value applies where the condition holds. */
    Case(Condition cond, Expr value)
        : cond_(std::move(cond)), value_(std::move(value))
    {}
    /** Unguarded piece: value applies over the whole domain. */
    explicit Case(Expr value) : value_(std::move(value)) {}

    bool hasCondition() const { return cond_.has_value(); }
    const Condition &condition() const { return *cond_; }
    const Expr &value() const { return value_; }

  private:
    std::optional<Condition> cond_;
    Expr value_;
};

/** Shared payload of a Function handle. */
class FuncData : public CallableData
{
  public:
    FuncData(std::string name, DType dtype, std::vector<Variable> vars,
             std::vector<Interval> dom)
        : CallableData(Kind::Function, std::move(name), dtype),
          vars_(std::move(vars)), dom_(std::move(dom))
    {}

    int numDims() const override { return int(vars_.size()); }

    const std::vector<Variable> &vars() const { return vars_; }
    const std::vector<Interval> &dom() const { return dom_; }
    const std::vector<Case> &cases() const { return cases_; }
    bool isDefined() const { return !cases_.empty(); }

    void setCases(std::vector<Case> cases) { cases_ = std::move(cases); }

  private:
    std::vector<Variable> vars_;
    std::vector<Interval> dom_;
    std::vector<Case> cases_;
};

/**
 * Handle to a pipeline function.  Construct with a variable domain, then
 * assign the definition via define().  Calling the handle with index
 * expressions references its values in other definitions.
 */
class Function
{
  public:
    /**
     * Declare a function.
     *
     * @param name display name (also used in generated code)
     * @param vars domain variables, outermost first
     * @param dom per-variable ranges
     * @param dtype element type of the function's values
     */
    Function(std::string name, std::vector<Variable> vars,
             std::vector<Interval> dom, DType dtype);

    const std::string &name() const { return data_->name(); }
    DType dtype() const { return data_->dtype(); }
    int numDims() const { return data_->numDims(); }
    const std::vector<Variable> &vars() const { return data_->vars(); }
    const std::vector<Interval> &dom() const { return data_->dom(); }

    /** Define by a single expression over the whole domain. */
    void define(Expr value);
    /** Define piecewise; cases must be mutually exclusive. */
    void define(std::vector<Case> cases);

    bool isDefined() const { return data_->isDefined(); }
    const std::vector<Case> &cases() const { return data_->cases(); }

    /** Reference this function's value at the given coordinates. */
    Expr operator()(std::vector<Expr> args) const;

    template <typename... E>
    Expr
    operator()(E &&...args) const
    {
        return (*this)(std::vector<Expr>{Expr(std::forward<E>(args))...});
    }

    std::shared_ptr<FuncData> data() const { return data_; }

    bool operator==(const Function &o) const { return data_ == o.data_; }

  private:
    std::shared_ptr<FuncData> data_;
};

} // namespace polymage::dsl

#endif // POLYMAGE_DSL_FUNCTION_HPP
