#include "dsl/expr.hpp"

#include <atomic>
#include <sstream>

namespace polymage::dsl {

int
nextEntityId()
{
    static std::atomic<int> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

//--------------------------------------------------------------------------
// Variable / Parameter
//--------------------------------------------------------------------------

Variable::Variable()
{
    auto d = std::make_shared<VarData>();
    d->id = nextEntityId();
    d->name = "v" + std::to_string(d->id);
    data_ = std::move(d);
}

Variable::Variable(std::string name)
{
    auto d = std::make_shared<VarData>();
    d->id = nextEntityId();
    d->name = std::move(name);
    data_ = std::move(d);
}

Variable::operator Expr() const
{
    return Expr(std::make_shared<VarRefNode>(data_));
}

Parameter::Parameter(DType dtype)
{
    auto d = std::make_shared<ParamData>();
    d->id = nextEntityId();
    d->name = "p" + std::to_string(d->id);
    d->dtype = dtype;
    data_ = std::move(d);
}

Parameter::Parameter(std::string name, DType dtype)
{
    auto d = std::make_shared<ParamData>();
    d->id = nextEntityId();
    d->name = std::move(name);
    d->dtype = dtype;
    data_ = std::move(d);
}

Parameter::Parameter(std::string name, std::int64_t lo, std::int64_t hi,
                     DType dtype)
{
    auto d = std::make_shared<ParamData>();
    d->id = nextEntityId();
    d->name = std::move(name);
    d->dtype = dtype;
    d->boundLo = lo;
    d->boundHi = hi;
    data_ = std::move(d);
}

Parameter::operator Expr() const
{
    return Expr(std::make_shared<ParamRefNode>(data_));
}

//--------------------------------------------------------------------------
// Expr basics
//--------------------------------------------------------------------------

Expr::Expr(int v) : node_(std::make_shared<ConstIntNode>(v)) {}
Expr::Expr(std::int64_t v) : node_(std::make_shared<ConstIntNode>(v)) {}
Expr::Expr(double v) : node_(std::make_shared<ConstFloatNode>(v)) {}
Expr::Expr(float v) : node_(std::make_shared<ConstFloatNode>(v)) {}

const ExprNode &
Expr::node() const
{
    if (!node_)
        specError("use of an undefined expression");
    return *node_;
}

DType
Expr::type() const
{
    return node().dtype();
}

namespace {

void
requireDefined(const Expr &e, const char *what)
{
    if (!e.defined())
        specError("undefined operand in ", what);
}

Expr
makeBinOp(BinOpKind op, Expr a, Expr b)
{
    requireDefined(a, "binary operation");
    requireDefined(b, "binary operation");
    DType t = dtypePromote(a.type(), b.type());
    return Expr(std::make_shared<BinOpNode>(op, std::move(a), std::move(b),
                                            t));
}

} // namespace

Expr operator+(Expr a, Expr b)
{ return makeBinOp(BinOpKind::Add, std::move(a), std::move(b)); }
Expr operator-(Expr a, Expr b)
{ return makeBinOp(BinOpKind::Sub, std::move(a), std::move(b)); }
Expr operator*(Expr a, Expr b)
{ return makeBinOp(BinOpKind::Mul, std::move(a), std::move(b)); }
Expr operator/(Expr a, Expr b)
{ return makeBinOp(BinOpKind::Div, std::move(a), std::move(b)); }
Expr operator%(Expr a, Expr b)
{ return makeBinOp(BinOpKind::Mod, std::move(a), std::move(b)); }

Expr
operator-(Expr a)
{
    requireDefined(a, "negation");
    DType t = a.type();
    return Expr(std::make_shared<UnOpNode>(UnOpKind::Neg, std::move(a), t));
}

Expr min(Expr a, Expr b)
{ return makeBinOp(BinOpKind::Min, std::move(a), std::move(b)); }
Expr max(Expr a, Expr b)
{ return makeBinOp(BinOpKind::Max, std::move(a), std::move(b)); }

Expr
clamp(Expr v, Expr lo, Expr hi)
{
    return max(min(std::move(v), std::move(hi)), std::move(lo));
}

Expr
select(Condition cond, Expr t, Expr f)
{
    if (!cond.defined())
        specError("undefined condition in select");
    requireDefined(t, "select");
    requireDefined(f, "select");
    DType ty = dtypePromote(t.type(), f.type());
    return Expr(std::make_shared<SelectNode>(std::move(cond), std::move(t),
                                             std::move(f), ty));
}

Expr
cast(DType t, Expr e)
{
    requireDefined(e, "cast");
    return Expr(std::make_shared<CastNode>(t, std::move(e)));
}

namespace {

Expr
makeMathFn(MathFnKind fn, std::vector<Expr> args)
{
    DType t = DType::Float;
    for (const auto &a : args) {
        requireDefined(a, "math intrinsic");
        t = dtypePromote(t, a.type());
    }
    // abs of an integer stays integral.
    if (fn == MathFnKind::Abs && !dtypeIsFloat(args[0].type()))
        t = args[0].type();
    return Expr(std::make_shared<MathFnNode>(fn, std::move(args), t));
}

} // namespace

Expr exp(Expr e) { return makeMathFn(MathFnKind::Exp, {std::move(e)}); }
Expr log(Expr e) { return makeMathFn(MathFnKind::Log, {std::move(e)}); }
Expr sqrt(Expr e) { return makeMathFn(MathFnKind::Sqrt, {std::move(e)}); }
Expr sin(Expr e) { return makeMathFn(MathFnKind::Sin, {std::move(e)}); }
Expr cos(Expr e) { return makeMathFn(MathFnKind::Cos, {std::move(e)}); }
Expr abs(Expr e) { return makeMathFn(MathFnKind::Abs, {std::move(e)}); }
Expr floorE(Expr e) { return makeMathFn(MathFnKind::Floor, {std::move(e)}); }
Expr ceilE(Expr e) { return makeMathFn(MathFnKind::Ceil, {std::move(e)}); }

Expr
pow(Expr base, Expr exponent)
{
    return makeMathFn(MathFnKind::Pow, {std::move(base),
                                        std::move(exponent)});
}

Expr
constInt(std::int64_t v, DType t)
{
    return Expr(std::make_shared<ConstIntNode>(v, t));
}

Expr
constFloat(double v, DType t)
{
    return Expr(std::make_shared<ConstFloatNode>(v, t));
}

//--------------------------------------------------------------------------
// Conditions
//--------------------------------------------------------------------------

const CondNode &
Condition::node() const
{
    if (!node_)
        specError("use of an undefined condition");
    return *node_;
}

Condition
Condition::cmp(Expr lhs, CmpOp op, Expr rhs)
{
    requireDefined(lhs, "comparison");
    requireDefined(rhs, "comparison");
    auto n = std::make_shared<CondNode>();
    n->kind = CondNode::Kind::Cmp;
    n->op = op;
    n->lhs = std::move(lhs);
    n->rhs = std::move(rhs);
    return Condition(std::move(n));
}

Condition
Condition::operator&(const Condition &o) const
{
    node();
    o.node();
    auto n = std::make_shared<CondNode>();
    n->kind = CondNode::Kind::And;
    n->a = node_;
    n->b = o.node_;
    return Condition(std::move(n));
}

Condition
Condition::operator|(const Condition &o) const
{
    node();
    o.node();
    auto n = std::make_shared<CondNode>();
    n->kind = CondNode::Kind::Or;
    n->a = node_;
    n->b = o.node_;
    return Condition(std::move(n));
}

Condition operator<(Expr a, Expr b)
{ return Condition::cmp(std::move(a), CmpOp::LT, std::move(b)); }
Condition operator<=(Expr a, Expr b)
{ return Condition::cmp(std::move(a), CmpOp::LE, std::move(b)); }
Condition operator>(Expr a, Expr b)
{ return Condition::cmp(std::move(a), CmpOp::GT, std::move(b)); }
Condition operator>=(Expr a, Expr b)
{ return Condition::cmp(std::move(a), CmpOp::GE, std::move(b)); }
Condition operator==(Expr a, Expr b)
{ return Condition::cmp(std::move(a), CmpOp::EQ, std::move(b)); }
Condition operator!=(Expr a, Expr b)
{ return Condition::cmp(std::move(a), CmpOp::NE, std::move(b)); }

//--------------------------------------------------------------------------
// Traversal
//--------------------------------------------------------------------------

void
forEachNode(const Expr &e, const std::function<void(const ExprNode &)> &fn)
{
    const ExprNode &n = e.node();
    fn(n);
    switch (n.kind()) {
      case ExprKind::ConstInt:
      case ExprKind::ConstFloat:
      case ExprKind::VarRef:
      case ExprKind::ParamRef:
        break;
      case ExprKind::Call:
        for (const auto &a : static_cast<const CallNode &>(n).args)
            forEachNode(a, fn);
        break;
      case ExprKind::BinOp: {
        const auto &b = static_cast<const BinOpNode &>(n);
        forEachNode(b.a, fn);
        forEachNode(b.b, fn);
        break;
      }
      case ExprKind::UnOp:
        forEachNode(static_cast<const UnOpNode &>(n).a, fn);
        break;
      case ExprKind::Cast:
        forEachNode(static_cast<const CastNode &>(n).a, fn);
        break;
      case ExprKind::Select: {
        const auto &s = static_cast<const SelectNode &>(n);
        forEachNode(s.cond, fn);
        forEachNode(s.t, fn);
        forEachNode(s.f, fn);
        break;
      }
      case ExprKind::MathFn:
        for (const auto &a : static_cast<const MathFnNode &>(n).args)
            forEachNode(a, fn);
        break;
    }
}

void
forEachNode(const Condition &c,
            const std::function<void(const ExprNode &)> &fn)
{
    const CondNode &n = c.node();
    if (n.kind == CondNode::Kind::Cmp) {
        forEachNode(n.lhs, fn);
        forEachNode(n.rhs, fn);
    } else {
        forEachNode(Condition(n.a), fn);
        forEachNode(Condition(n.b), fn);
    }
}

//--------------------------------------------------------------------------
// Printing
//--------------------------------------------------------------------------

namespace {

const char *
binOpToken(BinOpKind op)
{
    switch (op) {
      case BinOpKind::Add: return "+";
      case BinOpKind::Sub: return "-";
      case BinOpKind::Mul: return "*";
      case BinOpKind::Div: return "/";
      case BinOpKind::Mod: return "%";
      case BinOpKind::Min: return "min";
      case BinOpKind::Max: return "max";
    }
    internalError("unknown binop");
}

const char *
cmpToken(CmpOp op)
{
    switch (op) {
      case CmpOp::LT: return "<";
      case CmpOp::LE: return "<=";
      case CmpOp::GT: return ">";
      case CmpOp::GE: return ">=";
      case CmpOp::EQ: return "==";
      case CmpOp::NE: return "!=";
    }
    internalError("unknown cmp");
}

const char *
mathFnName(MathFnKind fn)
{
    switch (fn) {
      case MathFnKind::Exp: return "exp";
      case MathFnKind::Log: return "log";
      case MathFnKind::Sqrt: return "sqrt";
      case MathFnKind::Sin: return "sin";
      case MathFnKind::Cos: return "cos";
      case MathFnKind::Abs: return "abs";
      case MathFnKind::Pow: return "pow";
      case MathFnKind::Floor: return "floor";
      case MathFnKind::Ceil: return "ceil";
    }
    internalError("unknown math fn");
}

void printExpr(std::ostream &os, const Expr &e);

void
printCond(std::ostream &os, const Condition &c)
{
    const CondNode &n = c.node();
    switch (n.kind) {
      case CondNode::Kind::Cmp:
        printExpr(os, n.lhs);
        os << " " << cmpToken(n.op) << " ";
        printExpr(os, n.rhs);
        break;
      case CondNode::Kind::And:
      case CondNode::Kind::Or:
        os << "(";
        printCond(os, Condition(n.a));
        os << (n.kind == CondNode::Kind::And ? " & " : " | ");
        printCond(os, Condition(n.b));
        os << ")";
        break;
    }
}

void
printExpr(std::ostream &os, const Expr &e)
{
    const ExprNode &n = e.node();
    switch (n.kind()) {
      case ExprKind::ConstInt:
        os << static_cast<const ConstIntNode &>(n).value;
        break;
      case ExprKind::ConstFloat:
        os << static_cast<const ConstFloatNode &>(n).value;
        break;
      case ExprKind::VarRef:
        os << static_cast<const VarRefNode &>(n).var->name;
        break;
      case ExprKind::ParamRef:
        os << static_cast<const ParamRefNode &>(n).param->name;
        break;
      case ExprKind::Call: {
        const auto &c = static_cast<const CallNode &>(n);
        os << c.callee->name() << "(";
        for (std::size_t i = 0; i < c.args.size(); ++i) {
            if (i)
                os << ", ";
            printExpr(os, c.args[i]);
        }
        os << ")";
        break;
      }
      case ExprKind::BinOp: {
        const auto &b = static_cast<const BinOpNode &>(n);
        if (b.op == BinOpKind::Min || b.op == BinOpKind::Max) {
            os << binOpToken(b.op) << "(";
            printExpr(os, b.a);
            os << ", ";
            printExpr(os, b.b);
            os << ")";
        } else {
            os << "(";
            printExpr(os, b.a);
            os << " " << binOpToken(b.op) << " ";
            printExpr(os, b.b);
            os << ")";
        }
        break;
      }
      case ExprKind::UnOp:
        os << "(-";
        printExpr(os, static_cast<const UnOpNode &>(n).a);
        os << ")";
        break;
      case ExprKind::Cast: {
        const auto &c = static_cast<const CastNode &>(n);
        os << dtypeName(n.dtype()) << "(";
        printExpr(os, c.a);
        os << ")";
        break;
      }
      case ExprKind::Select: {
        const auto &s = static_cast<const SelectNode &>(n);
        os << "select(";
        printCond(os, s.cond);
        os << ", ";
        printExpr(os, s.t);
        os << ", ";
        printExpr(os, s.f);
        os << ")";
        break;
      }
      case ExprKind::MathFn: {
        const auto &m = static_cast<const MathFnNode &>(n);
        os << mathFnName(m.fn) << "(";
        for (std::size_t i = 0; i < m.args.size(); ++i) {
            if (i)
                os << ", ";
            printExpr(os, m.args[i]);
        }
        os << ")";
        break;
      }
    }
}

} // namespace

std::string
toString(const Expr &e)
{
    std::ostringstream os;
    printExpr(os, e);
    return os.str();
}

std::string
toString(const Condition &c)
{
    std::ostringstream os;
    printCond(os, c);
    return os.str();
}

} // namespace polymage::dsl
