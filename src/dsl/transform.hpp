/**
 * @file
 * Structural rewriting of DSL expressions and conditions, used by the
 * inlining pass and schedule-driven code generation.
 */
#ifndef POLYMAGE_DSL_TRANSFORM_HPP
#define POLYMAGE_DSL_TRANSFORM_HPP

#include <functional>
#include <map>
#include <optional>

#include "dsl/expr.hpp"

namespace polymage::dsl {

/**
 * Callback deciding node replacements.  Invoked bottom-up on every node
 * after its children were rewritten; returning an Expr substitutes the
 * node, returning nullopt keeps the (rebuilt) node.
 */
using RewriteFn = std::function<std::optional<Expr>(const ExprNode &)>;

/** Rewrite an expression bottom-up with @p fn. */
Expr rewriteExpr(const Expr &e, const RewriteFn &fn);

/** Rewrite the expressions inside a condition bottom-up with @p fn. */
Condition rewriteCondition(const Condition &c, const RewriteFn &fn);

/** Substitute variables by expressions (keyed by variable entity id). */
Expr substituteVars(const Expr &e, const std::map<int, Expr> &subst);

/** Substitute variables inside a condition. */
Condition substituteVars(const Condition &c,
                         const std::map<int, Expr> &subst);

/** Number of nodes in an expression tree (for inlining size limits). */
int countNodes(const Expr &e);

} // namespace polymage::dsl

#endif // POLYMAGE_DSL_TRANSFORM_HPP
