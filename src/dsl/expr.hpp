/**
 * @file
 * Expression AST of the PolyMage DSL.
 *
 * Images and functions are abstractions of infinite integer grids; new
 * functions are defined by expressions over other functions' values
 * (paper §2).  Expr is an immutable value type wrapping a shared AST
 * node.  Variables and parameters are lightweight handles convertible to
 * Expr; comparisons on Expr build Condition trees used in piecewise Case
 * definitions and Select expressions.
 */
#ifndef POLYMAGE_DSL_EXPR_HPP
#define POLYMAGE_DSL_EXPR_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dsl/types.hpp"
#include "support/diagnostics.hpp"

namespace polymage::dsl {

class Expr;
class Condition;

/** Discriminator for ExprNode. */
enum class ExprKind {
    ConstInt,
    ConstFloat,
    VarRef,
    ParamRef,
    Call,
    BinOp,
    UnOp,
    Cast,
    Select,
    MathFn,
};

/** Binary operator kinds.  Div on integer operands is floor division. */
enum class BinOpKind { Add, Sub, Mul, Div, Mod, Min, Max };

/** Unary operator kinds. */
enum class UnOpKind { Neg };

/** Math intrinsics available in definitions. */
enum class MathFnKind { Exp, Log, Sqrt, Sin, Cos, Abs, Pow, Floor, Ceil };

/** Comparison operators for conditions. */
enum class CmpOp { LT, LE, GT, GE, EQ, NE };

//--------------------------------------------------------------------------
// Named entities referenced by expressions
//--------------------------------------------------------------------------

/** Allocate a process-unique id for DSL entities. */
int nextEntityId();

/** Shared payload of a Variable handle. */
struct VarData
{
    int id;
    std::string name;
};

/** Shared payload of a Parameter handle. */
struct ParamData
{
    int id;
    std::string name;
    DType dtype;
    /**
     * Optional declared value bounds (inclusive).  Range analysis uses
     * them to bound parameter-dependent expressions; undeclared bounds
     * degrade to the parameter's dtype range.
     */
    std::optional<std::int64_t> boundLo, boundHi;
};

/**
 * Common base of everything callable in an expression: images,
 * functions, and accumulators.  Call nodes hold a shared_ptr to this
 * base; compiler passes downcast via kind().
 */
class CallableData
{
  public:
    enum class Kind { Image, Function, Accumulator };

    CallableData(Kind kind, std::string name, DType dtype)
        : kind_(kind), id_(nextEntityId()), name_(std::move(name)),
          dtype_(dtype)
    {}
    virtual ~CallableData() = default;

    Kind kind() const { return kind_; }
    int id() const { return id_; }
    const std::string &name() const { return name_; }
    DType dtype() const { return dtype_; }

    /** Number of index dimensions expected in a call. */
    virtual int numDims() const = 0;

  private:
    Kind kind_;
    int id_;
    std::string name_;
    DType dtype_;
};

using CallablePtr = std::shared_ptr<const CallableData>;

/**
 * Integer variable labelling a function dimension (paper's Variable
 * construct).  Copies share identity.
 */
class Variable
{
  public:
    /** Create a fresh variable with a generated name. */
    Variable();
    /** Create a fresh variable with the given display name. */
    explicit Variable(std::string name);

    int id() const { return data_->id; }
    const std::string &name() const { return data_->name; }

    /** Variables are usable directly in expressions. */
    operator Expr() const;

    bool operator==(const Variable &o) const { return data_ == o.data_; }

    std::shared_ptr<const VarData> data() const { return data_; }

  private:
    std::shared_ptr<const VarData> data_;
};

/**
 * Pipeline input scalar (paper's Parameter construct), e.g. image width
 * and height.  Restricted to integer types for use in bounds.
 */
class Parameter
{
  public:
    explicit Parameter(DType dtype = DType::Int);
    Parameter(std::string name, DType dtype = DType::Int);
    /** Declare with inclusive value bounds (see ParamData). */
    Parameter(std::string name, std::int64_t lo, std::int64_t hi,
              DType dtype = DType::Int);

    int id() const { return data_->id; }
    const std::string &name() const { return data_->name; }
    DType dtype() const { return data_->dtype; }

    operator Expr() const;

    bool operator==(const Parameter &o) const { return data_ == o.data_; }

    std::shared_ptr<const ParamData> data() const { return data_; }

  private:
    std::shared_ptr<const ParamData> data_;
};

//--------------------------------------------------------------------------
// Expression nodes
//--------------------------------------------------------------------------

/** Immutable AST node base. */
class ExprNode
{
  public:
    virtual ~ExprNode() = default;

    ExprKind kind() const { return kind_; }
    DType dtype() const { return dtype_; }

  protected:
    ExprNode(ExprKind kind, DType dtype) : kind_(kind), dtype_(dtype) {}

  private:
    ExprKind kind_;
    DType dtype_;
};

using ExprNodePtr = std::shared_ptr<const ExprNode>;

/**
 * Immutable expression value.  Copying is cheap (shared node).  An Expr
 * may be default-constructed in which case defined() is false; using an
 * undefined Expr in a builder raises SpecError.
 */
class Expr
{
  public:
    Expr() = default;
    Expr(int v);
    Expr(std::int64_t v);
    Expr(double v);
    Expr(float v);
    explicit Expr(ExprNodePtr node) : node_(std::move(node)) {}

    bool defined() const { return node_ != nullptr; }

    /** Element type of the expression value. */
    DType type() const;

    const ExprNode &node() const;
    const ExprNodePtr &nodePtr() const { return node_; }

    /** Structural equality of the underlying node pointer. */
    bool sameAs(const Expr &o) const { return node_ == o.node_; }

  private:
    ExprNodePtr node_;
};

struct ConstIntNode : ExprNode
{
    std::int64_t value;
    ConstIntNode(std::int64_t v, DType t = DType::Int)
        : ExprNode(ExprKind::ConstInt, t), value(v)
    {}
};

struct ConstFloatNode : ExprNode
{
    double value;
    ConstFloatNode(double v, DType t = DType::Float)
        : ExprNode(ExprKind::ConstFloat, t), value(v)
    {}
};

struct VarRefNode : ExprNode
{
    std::shared_ptr<const VarData> var;
    explicit VarRefNode(std::shared_ptr<const VarData> v)
        : ExprNode(ExprKind::VarRef, DType::Int), var(std::move(v))
    {}
};

struct ParamRefNode : ExprNode
{
    std::shared_ptr<const ParamData> param;
    explicit ParamRefNode(std::shared_ptr<const ParamData> p)
        : ExprNode(ExprKind::ParamRef, p->dtype), param(std::move(p))
    {}
};

/**
 * Access to a value of an image, function, or accumulator at the given
 * index expressions.
 *
 * @note A self-referential call (a function referenced inside its own
 *       definition, used for time-iterated patterns) creates a
 *       shared_ptr cycle; specs are small and built once, so the leak is
 *       bounded and accepted for interface simplicity.
 */
struct CallNode : ExprNode
{
    CallablePtr callee;
    std::vector<Expr> args;
    CallNode(CallablePtr c, std::vector<Expr> a)
        : ExprNode(ExprKind::Call, c->dtype()), callee(std::move(c)),
          args(std::move(a))
    {}
};

struct BinOpNode : ExprNode
{
    BinOpKind op;
    Expr a, b;
    BinOpNode(BinOpKind op, Expr a, Expr b, DType t)
        : ExprNode(ExprKind::BinOp, t), op(op), a(std::move(a)),
          b(std::move(b))
    {}
};

struct UnOpNode : ExprNode
{
    UnOpKind op;
    Expr a;
    UnOpNode(UnOpKind op, Expr a, DType t)
        : ExprNode(ExprKind::UnOp, t), op(op), a(std::move(a))
    {}
};

struct CastNode : ExprNode
{
    Expr a;
    CastNode(DType t, Expr a) : ExprNode(ExprKind::Cast, t), a(std::move(a))
    {}
};

struct MathFnNode : ExprNode
{
    MathFnKind fn;
    std::vector<Expr> args;
    MathFnNode(MathFnKind fn, std::vector<Expr> a, DType t)
        : ExprNode(ExprKind::MathFn, t), fn(fn), args(std::move(a))
    {}
};

//--------------------------------------------------------------------------
// Conditions
//--------------------------------------------------------------------------

/** Node of a condition tree: a comparison leaf or a boolean combinator. */
struct CondNode
{
    enum class Kind { Cmp, And, Or };

    Kind kind;
    // Cmp leaves:
    CmpOp op = CmpOp::EQ;
    Expr lhs, rhs;
    // And/Or children:
    std::shared_ptr<const CondNode> a, b;
};

/**
 * Boolean condition over expressions (paper's Condition construct),
 * combined with & and |.
 */
class Condition
{
  public:
    Condition() = default;
    explicit Condition(std::shared_ptr<const CondNode> n)
        : node_(std::move(n))
    {}

    /** Build a comparison condition lhs op rhs. */
    static Condition cmp(Expr lhs, CmpOp op, Expr rhs);

    bool defined() const { return node_ != nullptr; }
    const CondNode &node() const;

    /** Conjunction. */
    Condition operator&(const Condition &o) const;
    /** Disjunction. */
    Condition operator|(const Condition &o) const;

  private:
    std::shared_ptr<const CondNode> node_;
};

struct SelectNode : ExprNode
{
    Condition cond;
    Expr t, f;
    SelectNode(Condition c, Expr t, Expr f, DType ty)
        : ExprNode(ExprKind::Select, ty), cond(std::move(c)),
          t(std::move(t)), f(std::move(f))
    {}
};

//--------------------------------------------------------------------------
// Operators and builders
//--------------------------------------------------------------------------

Expr operator+(Expr a, Expr b);
Expr operator-(Expr a, Expr b);
Expr operator*(Expr a, Expr b);
Expr operator/(Expr a, Expr b);
Expr operator%(Expr a, Expr b);
Expr operator-(Expr a);

Condition operator<(Expr a, Expr b);
Condition operator<=(Expr a, Expr b);
Condition operator>(Expr a, Expr b);
Condition operator>=(Expr a, Expr b);
Condition operator==(Expr a, Expr b);
Condition operator!=(Expr a, Expr b);

/** Elementwise minimum. */
Expr min(Expr a, Expr b);
/** Elementwise maximum. */
Expr max(Expr a, Expr b);
/** Clamp v into [lo, hi]. */
Expr clamp(Expr v, Expr lo, Expr hi);
/** cond ? t : f.  Branch types are promoted. */
Expr select(Condition cond, Expr t, Expr f);
/** Explicit type conversion. */
Expr cast(DType t, Expr e);

Expr exp(Expr e);
Expr log(Expr e);
Expr sqrt(Expr e);
Expr sin(Expr e);
Expr cos(Expr e);
Expr abs(Expr e);
Expr pow(Expr base, Expr exponent);
Expr floorE(Expr e);
Expr ceilE(Expr e);

/** Integer constant of a specific type. */
Expr constInt(std::int64_t v, DType t = DType::Int);
/** Floating constant of a specific type. */
Expr constFloat(double v, DType t = DType::Float);

/** Render an expression for diagnostics. */
std::string toString(const Expr &e);
/** Render a condition for diagnostics. */
std::string toString(const Condition &c);

/**
 * Pre-order traversal of an expression tree, descending into Select
 * conditions.  @p fn is invoked once per node.
 */
void forEachNode(const Expr &e,
                 const std::function<void(const ExprNode &)> &fn);

/** Pre-order traversal of the comparison leaves of a condition. */
void forEachNode(const Condition &c,
                 const std::function<void(const ExprNode &)> &fn);

} // namespace polymage::dsl

#endif // POLYMAGE_DSL_EXPR_HPP
