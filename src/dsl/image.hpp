/**
 * @file
 * Pipeline input images (paper's Image construct): typed multi-
 * dimensional grids whose extents are affine expressions of parameters
 * and constants.
 */
#ifndef POLYMAGE_DSL_IMAGE_HPP
#define POLYMAGE_DSL_IMAGE_HPP

#include <memory>
#include <string>
#include <vector>

#include "dsl/expr.hpp"

namespace polymage::dsl {

/** Shared payload of an Image handle. */
class ImageData : public CallableData
{
  public:
    ImageData(std::string name, DType dtype, std::vector<Expr> extents)
        : CallableData(Kind::Image, std::move(name), dtype),
          extents_(std::move(extents))
    {}

    int numDims() const override { return int(extents_.size()); }

    /** Extent (size) of each dimension; index i ranges over [0, extent). */
    const std::vector<Expr> &extents() const { return extents_; }

  private:
    std::vector<Expr> extents_;
};

/**
 * Handle to a pipeline input image.  Calling the handle with index
 * expressions yields the pixel value at those coordinates.
 */
class Image
{
  public:
    /** Declare an input image of the given type and per-dim extents. */
    Image(std::string name, DType dtype, std::vector<Expr> extents);
    Image(DType dtype, std::vector<Expr> extents);
    /** Pass-author interface: wrap an existing payload (e.g. the
     * frame-delay taps minted by dsl::prev()). */
    explicit Image(std::shared_ptr<const ImageData> data)
        : data_(std::move(data))
    {}

    const std::string &name() const { return data_->name(); }
    DType dtype() const { return data_->dtype(); }
    int numDims() const { return data_->numDims(); }
    const std::vector<Expr> &extents() const { return data_->extents(); }

    /** Access a pixel value. */
    Expr operator()(std::vector<Expr> args) const;

    template <typename... E>
    Expr
    operator()(E &&...args) const
    {
        return (*this)(std::vector<Expr>{Expr(std::forward<E>(args))...});
    }

    std::shared_ptr<const ImageData> data() const { return data_; }

    bool operator==(const Image &o) const { return data_ == o.data_; }

  private:
    std::shared_ptr<const ImageData> data_;
};

} // namespace polymage::dsl

#endif // POLYMAGE_DSL_IMAGE_HPP
