/**
 * @file
 * The streaming time axis of the DSL (docs/STREAMING.md): `prev(f, k)`
 * references a Function's or input Image's value k frames ago.  Each
 * distinct (source, k) pair mints one synthetic "tap" input image named
 * `<source>__t<k>`; the compiler's stream-lowering phase turns taps
 * into persistent ring buffers rotated by frame index.
 */
#ifndef POLYMAGE_DSL_STREAM_HPP
#define POLYMAGE_DSL_STREAM_HPP

#include "dsl/function.hpp"
#include "dsl/image.hpp"
#include "dsl/pipeline_spec.hpp"

namespace polymage::dsl {

/**
 * Reference @p f's value @p k frames ago (k >= 1).  Requires a prior
 * spec.setMaxDelay(>= k).  Returns a tap Image whose extents equal the
 * function's domain box (upper bound + 1 per dimension); repeated
 * calls with the same (f, k) return the same tap.  Frames t < k read
 * zero-initialized ring slots (warm-up semantics).
 */
Image prev(PipelineSpec &spec, const Function &f, int k);

/** Same, for an input image: the frame fed @p k calls ago. */
Image prev(PipelineSpec &spec, const Image &img, int k);

} // namespace polymage::dsl

#endif // POLYMAGE_DSL_STREAM_HPP
