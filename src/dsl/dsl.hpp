/**
 * @file
 * Umbrella header for the PolyMage DSL: include this to write pipeline
 * specifications.
 */
#ifndef POLYMAGE_DSL_DSL_HPP
#define POLYMAGE_DSL_DSL_HPP

#include "dsl/expr.hpp"          // IWYU pragma: export
#include "dsl/function.hpp"      // IWYU pragma: export
#include "dsl/image.hpp"         // IWYU pragma: export
#include "dsl/pipeline_spec.hpp" // IWYU pragma: export
#include "dsl/reduction.hpp"     // IWYU pragma: export
#include "dsl/stencil.hpp"       // IWYU pragma: export
#include "dsl/stream.hpp"        // IWYU pragma: export
#include "dsl/types.hpp"         // IWYU pragma: export

#endif // POLYMAGE_DSL_DSL_HPP
