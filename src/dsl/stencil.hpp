/**
 * @file
 * The Stencil construct (paper §2): a compact way to specify spatial
 * filtering as a weighted sum over a neighbourhood.  Expands into plain
 * arithmetic on the accessed values.
 */
#ifndef POLYMAGE_DSL_STENCIL_HPP
#define POLYMAGE_DSL_STENCIL_HPP

#include <functional>
#include <vector>

#include "dsl/expr.hpp"

namespace polymage::dsl {

/**
 * 2-D stencil over @p access, centred at (x, y).
 *
 * Builds scale * sum_{i,j} weights[i][j] * access(x + i - ci, y + j - cj)
 * where (ci, cj) is the centre of the weight matrix.  Zero weights are
 * skipped.  The matrix must be rectangular with odd extents.
 *
 * @param access callback mapping two index Exprs to the accessed value,
 *               typically a Function or Image handle
 * @param x row variable/expression
 * @param y column variable/expression
 * @param weights weight matrix, weights[row][col]
 * @param scale overall scale factor applied to the sum
 */
Expr stencil(const std::function<Expr(Expr, Expr)> &access, Expr x, Expr y,
             const std::vector<std::vector<double>> &weights,
             double scale = 1.0);

/**
 * Separable 1-D stencil along one dimension.
 *
 * Builds scale * sum_i weights[i] * access(p + i - c) where c is the
 * centre index of the weight vector (length must be odd).
 */
Expr stencil1d(const std::function<Expr(Expr)> &access, Expr p,
               const std::vector<double> &weights, double scale = 1.0);

} // namespace polymage::dsl

#endif // POLYMAGE_DSL_STENCIL_HPP
