/**
 * @file
 * dsl::prev() -- frame-delay taps over Functions and input Images.
 */
#include "dsl/stream.hpp"

#include <string>

#include "support/diagnostics.hpp"

namespace polymage::dsl {

namespace {

/** Existing tap for (source id, k), if prev() was already called. */
std::shared_ptr<const ImageData>
findTap(const PipelineSpec &spec, int source_id, int k)
{
    for (const auto &d : spec.delays()) {
        if (d.sourceId() == source_id && d.delay == k)
            return d.tap;
    }
    return nullptr;
}

std::string
tapName(const std::string &source, int k)
{
    return source + "__t" + std::to_string(k);
}

bool
isConstZero(const Expr &e)
{
    if (e.node().kind() != ExprKind::ConstInt)
        return false;
    return static_cast<const ConstIntNode &>(e.node()).value == 0;
}

} // namespace

Image
prev(PipelineSpec &spec, const Function &f, int k)
{
    if (auto tap = findTap(spec, f.data()->id(), k))
        return Image(std::move(tap));
    // The tap's extents are the function's domain box: dimension d of
    // the per-frame buffer spans [0, upper], so the extent is upper+1.
    std::vector<Expr> extents;
    extents.reserve(f.dom().size());
    for (const auto &iv : f.dom()) {
        if (iv.lower().defined() && !isConstZero(iv.lower()))
            specError("prev(", f.name(), "): delayed functions must "
                      "have zero-based domains");
        extents.push_back(iv.upper() + 1);
    }
    auto tap = std::make_shared<ImageData>(tapName(f.name(), k),
                                           f.dtype(), std::move(extents));
    DelayBinding b;
    b.tap = tap;
    b.source = f.data();
    b.delay = k;
    spec.addDelay(std::move(b));
    return Image(std::move(tap));
}

Image
prev(PipelineSpec &spec, const Image &img, int k)
{
    if (auto tap = findTap(spec, img.data()->id(), k))
        return Image(std::move(tap));
    auto tap = std::make_shared<ImageData>(tapName(img.name(), k),
                                           img.dtype(), img.extents());
    DelayBinding b;
    b.tap = tap;
    b.sourceImage = img.data();
    b.delay = k;
    spec.addDelay(std::move(b));
    return Image(std::move(tap));
}

} // namespace polymage::dsl
