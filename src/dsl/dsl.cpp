/**
 * @file
 * Implementations of the Image, Function, and Accumulator handles.
 */
#include "dsl/function.hpp"
#include "dsl/image.hpp"
#include "dsl/pipeline_spec.hpp"
#include "dsl/reduction.hpp"

#include <limits>

namespace polymage::dsl {

namespace {

Expr
makeCall(CallablePtr callee, std::vector<Expr> args)
{
    if (int(args.size()) != callee->numDims()) {
        specError("call to '", callee->name(), "' with ", args.size(),
                  " indices; expected ", callee->numDims());
    }
    for (const auto &a : args) {
        if (!a.defined())
            specError("undefined index in call to '", callee->name(), "'");
        if (dtypeIsFloat(a.type())) {
            specError("non-integer index in call to '", callee->name(),
                      "'; cast or floor the expression explicitly");
        }
    }
    return Expr(std::make_shared<CallNode>(std::move(callee),
                                           std::move(args)));
}

} // namespace

//--------------------------------------------------------------------------
// Image
//--------------------------------------------------------------------------

Image::Image(std::string name, DType dtype, std::vector<Expr> extents)
{
    if (extents.empty())
        specError("image '", name, "' must have at least one dimension");
    for (const auto &e : extents) {
        if (!e.defined())
            specError("undefined extent for image '", name, "'");
    }
    data_ = std::make_shared<ImageData>(std::move(name), dtype,
                                        std::move(extents));
}

Image::Image(DType dtype, std::vector<Expr> extents)
    : Image("img" + std::to_string(nextEntityId()), dtype,
            std::move(extents))
{}

Expr
Image::operator()(std::vector<Expr> args) const
{
    return makeCall(data_, std::move(args));
}

//--------------------------------------------------------------------------
// Function
//--------------------------------------------------------------------------

Function::Function(std::string name, std::vector<Variable> vars,
                   std::vector<Interval> dom, DType dtype)
{
    if (vars.empty())
        specError("function '", name, "' must have at least one variable");
    if (vars.size() != dom.size()) {
        specError("function '", name, "' has ", vars.size(),
                  " variables but ", dom.size(), " intervals");
    }
    for (std::size_t i = 0; i < vars.size(); ++i) {
        for (std::size_t j = i + 1; j < vars.size(); ++j) {
            if (vars[i] == vars[j]) {
                specError("function '", name,
                          "' repeats a domain variable");
            }
        }
    }
    for (const auto &iv : dom) {
        if (!iv.lower().defined() || !iv.upper().defined())
            specError("function '", name, "' has an undefined interval");
        if (iv.step() != 1)
            specError("function '", name,
                      "' uses a non-unit interval step; unsupported");
    }
    data_ = std::make_shared<FuncData>(std::move(name), dtype,
                                       std::move(vars), std::move(dom));
}

void
Function::define(Expr value)
{
    define(std::vector<Case>{Case(std::move(value))});
}

void
Function::define(std::vector<Case> cases)
{
    if (data_->isDefined())
        specError("function '", name(), "' is defined twice");
    if (cases.empty())
        specError("function '", name(), "' defined with no cases");
    bool unguarded = false;
    for (const auto &c : cases) {
        if (!c.value().defined())
            specError("function '", name(), "' has an undefined case value");
        if (!c.hasCondition())
            unguarded = true;
    }
    if (unguarded && cases.size() > 1) {
        specError("function '", name(), "' mixes an unconditional case ",
                  "with other cases; the definition is ambiguous");
    }
    data_->setCases(std::move(cases));
}

Expr
Function::operator()(std::vector<Expr> args) const
{
    return makeCall(data_, std::move(args));
}

//--------------------------------------------------------------------------
// Accumulator
//--------------------------------------------------------------------------

Expr
reduceIdentity(ReduceOp op, DType t)
{
    const bool flt = dtypeIsFloat(t);
    switch (op) {
      case ReduceOp::Sum:
        return flt ? constFloat(0.0, t) : constInt(0, t);
      case ReduceOp::Product:
        return flt ? constFloat(1.0, t) : constInt(1, t);
      case ReduceOp::Min:
        // Largest representable value of the type.
        if (flt)
            return constFloat(std::numeric_limits<double>::infinity(), t);
        switch (t) {
          case DType::UChar: return constInt(255, t);
          case DType::Short: return constInt(32767, t);
          case DType::UShort: return constInt(65535, t);
          case DType::Int:
            return constInt(std::numeric_limits<std::int32_t>::max(), t);
          default:
            return constInt(std::numeric_limits<std::int64_t>::max(), t);
        }
      case ReduceOp::Max:
        if (flt)
            return constFloat(-std::numeric_limits<double>::infinity(), t);
        switch (t) {
          case DType::UChar:
          case DType::UShort: return constInt(0, t);
          case DType::Short: return constInt(-32768, t);
          case DType::Int:
            return constInt(std::numeric_limits<std::int32_t>::min(), t);
          default:
            return constInt(std::numeric_limits<std::int64_t>::min(), t);
        }
    }
    internalError("unknown reduce op");
}

Accumulator::Accumulator(std::string name, std::vector<Variable> var_vars,
                         std::vector<Interval> var_dom,
                         std::vector<Variable> red_vars,
                         std::vector<Interval> red_dom, DType dtype)
{
    if (var_vars.size() != var_dom.size()) {
        specError("accumulator '", name, "' variable domain mismatch: ",
                  var_vars.size(), " vars vs ", var_dom.size(),
                  " intervals");
    }
    if (red_vars.size() != red_dom.size()) {
        specError("accumulator '", name, "' reduction domain mismatch: ",
                  red_vars.size(), " vars vs ", red_dom.size(),
                  " intervals");
    }
    if (var_vars.empty() || red_vars.empty())
        specError("accumulator '", name, "' requires both domains");
    data_ = std::make_shared<AccumData>(std::move(name), dtype,
                                        std::move(var_vars),
                                        std::move(var_dom),
                                        std::move(red_vars),
                                        std::move(red_dom));
}

void
Accumulator::accumulate(std::vector<Expr> target, Expr update, ReduceOp op,
                        Expr init, std::optional<Condition> guard)
{
    if (data_->isDefined())
        specError("accumulator '", name(), "' is defined twice");
    if (int(target.size()) != data_->numDims()) {
        specError("accumulator '", name(), "' updated with ",
                  target.size(), " target indices; expected ",
                  data_->numDims());
    }
    for (const auto &t : target) {
        if (!t.defined())
            specError("accumulator '", name(),
                      "' has an undefined target index");
    }
    if (!update.defined())
        specError("accumulator '", name(), "' has an undefined update");
    if (!init.defined())
        init = reduceIdentity(op, dtype());
    data_->setAccumulation(std::move(target), std::move(update), op,
                           std::move(init), std::move(guard));
}

Expr
Accumulator::operator()(std::vector<Expr> args) const
{
    return makeCall(data_, std::move(args));
}

//--------------------------------------------------------------------------
// PipelineSpec: streaming (frame-delay) axis
//--------------------------------------------------------------------------

void
PipelineSpec::setMaxDelay(int frames)
{
    if (frames < 1)
        specError("pipeline '", name_, "': setMaxDelay(", frames,
                  ") -- the maximum frame delay must be at least 1");
    if (!delays_.empty() && frames < maxDelay_)
        specError("pipeline '", name_, "': cannot lower the maximum "
                  "frame delay below taps already created by prev()");
    maxDelay_ = frames;
}

void
PipelineSpec::addDelay(DelayBinding b)
{
    const std::string src =
        b.source ? b.source->name()
                 : (b.sourceImage ? b.sourceImage->name() : "?");
    if (maxDelay_ == 0)
        specError("pipeline '", name_, "': prev(", src, ", ", b.delay,
                  ") before setMaxDelay() -- declare the maximum frame "
                  "delay first");
    if (b.delay < 1 || b.delay > maxDelay_)
        specError("pipeline '", name_, "': prev(", src, ", ", b.delay,
                  ") outside the declared delay range [1, ", maxDelay_,
                  "]");
    if (!b.tap)
        specError("pipeline '", name_, "': delay binding for '", src,
                  "' has no tap image");
    if (bool(b.source) == bool(b.sourceImage))
        specError("pipeline '", name_, "': delay binding for '", src,
                  "' must name exactly one Function or Image source");
    if (b.source && b.source->kind() != CallableData::Kind::Function)
        specError("pipeline '", name_, "': prev(", src,
                  ") -- only Functions and input Images can be "
                  "referenced at t-k");
    inputs_.push_back(b.tap);
    delays_.push_back(std::move(b));
}

} // namespace polymage::dsl
