/**
 * @file
 * Scalar element types usable in PolyMage pipelines, with the promotion
 * rules applied to mixed-type expressions and the mapping to C++ type
 * names used by the code generator.
 */
#ifndef POLYMAGE_DSL_TYPES_HPP
#define POLYMAGE_DSL_TYPES_HPP

#include <cstddef>
#include <string>

namespace polymage::dsl {

/** Element type of images, functions and expressions. */
enum class DType {
    UChar,   ///< 8-bit unsigned integer
    Short,   ///< 16-bit signed integer
    UShort,  ///< 16-bit unsigned integer
    Int,     ///< 32-bit signed integer
    Long,    ///< 64-bit signed integer
    Float,   ///< 32-bit IEEE float
    Double,  ///< 64-bit IEEE float
};

/** Size of one element in bytes. */
std::size_t dtypeSize(DType t);

/** C++ spelling of the type, as emitted in generated code. */
const char *dtypeCName(DType t);

/** Short human-readable name used in diagnostics. */
const char *dtypeName(DType t);

/** True for Float/Double. */
bool dtypeIsFloat(DType t);

/** True for the signed integer types (Short, Int, Long). */
bool dtypeIsSignedInt(DType t);

/**
 * Result type of a binary arithmetic operation on operands of types a
 * and b.  Floats dominate integers, wider dominates narrower, and mixed
 * integer arithmetic widens to Int (matching C integer promotion closely
 * enough for image kernels).
 */
DType dtypePromote(DType a, DType b);

/** Rank used by dtypePromote; exposed for tests. */
int dtypeRank(DType t);

} // namespace polymage::dsl

#endif // POLYMAGE_DSL_TYPES_HPP
