/**
 * @file
 * Machine-model probe (`polymage::machine`): the cache hierarchy and
 * core count the tile cost model needs to size working sets.  Values
 * come from sysfs (`/sys/devices/system/cpu/cpu0/cache/index*`) with a
 * `sysconf` fallback and conservative hard-coded defaults when neither
 * source answers, are cached per process, and can be pinned via
 * `POLYMAGE_MACHINE=<l1d>,<l2>,<l3>,<cores>[,<vector_bits>]` (bytes,
 * optional K/M/G suffixes) so tests and cross-machine comparisons are
 * reproducible.  The fifth field pins the SIMD register width the
 * explicit vector emitter targets (docs/VECTORIZATION.md).
 */
#ifndef POLYMAGE_MACHINE_MACHINE_HPP
#define POLYMAGE_MACHINE_MACHINE_HPP

#include <cstdint>
#include <optional>
#include <string>

namespace polymage::machine {

/** The machine parameters the tile cost model consumes. */
struct MachineInfo
{
    /** Per-core L1 data cache bytes. */
    std::int64_t l1dBytes = 32 << 10;
    /** Per-core unified L2 bytes. */
    std::int64_t l2Bytes = 256 << 10;
    /** Last-level cache bytes (typically shared across cores). */
    std::int64_t l3Bytes = 8 << 20;
    /** Cache line bytes. */
    std::int64_t lineBytes = 64;
    /** Logical core count. */
    int cores = 1;
    /**
     * Widest SIMD register the CPU offers, in bits; the explicit vector
     * emitter divides this by the element width to pick its lane count.
     * 128 is the safe floor on every supported target (SSE2 / NEON).
     */
    int vectorBits = 128;
    /** Name of the probed vector instruction set ("avx512", "avx2",
     * "avx", "sse2", "neon", or "generic"). */
    std::string isa = "generic";
    /**
     * Where the numbers came from: "env" (POLYMAGE_MACHINE), "sysfs",
     * "sysconf", or "fallback" (the conservative defaults above).
     * Mixed probes report the most specific source that contributed.
     */
    std::string source = "fallback";

    std::string toString() const;
    /** Serialized as the `machine` object of tune/profile reports. */
    std::string toJson() const;
};

/**
 * Probe the machine, uncached: the POLYMAGE_MACHINE override when set,
 * else sysfs, else sysconf, else the conservative defaults.  Fields a
 * source cannot answer fall back individually.
 */
MachineInfo probeMachine();

/**
 * Parse a `POLYMAGE_MACHINE`-style override: up to five
 * comma-separated fields `<l1d>,<l2>,<l3>,<cores>,<vector_bits>`,
 * sizes accepting K/M/G suffixes; empty fields keep the given
 * defaults (so `,,,,128` pins only the vector width).  Returns
 * nullopt (leaving @p base untouched semantics to the caller) when the
 * string is malformed.
 */
std::optional<MachineInfo> parseMachineSpec(const std::string &spec,
                                            MachineInfo base = {});

/**
 * The per-process machine model: probed once on first use, then
 * cached.  All compile-time consumers (driver, tuner) read this.
 */
const MachineInfo &machineInfo();

} // namespace polymage::machine

#endif // POLYMAGE_MACHINE_MACHINE_HPP
