#include "machine/machine.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <unistd.h>

#include "support/trace.hpp"

namespace polymage::machine {

namespace {

/**
 * Parse a size with an optional K/M/G suffix ("48K", "2M", "262144").
 * Returns nullopt on anything else.
 */
std::optional<std::int64_t>
parseSize(const std::string &field)
{
    if (field.empty())
        return std::nullopt;
    std::size_t pos = 0;
    long long v = 0;
    try {
        v = std::stoll(field, &pos);
    } catch (...) {
        return std::nullopt;
    }
    if (v < 0)
        return std::nullopt;
    std::int64_t mult = 1;
    if (pos < field.size()) {
        switch (std::toupper(field[pos])) {
        case 'K': mult = 1ll << 10; break;
        case 'M': mult = 1ll << 20; break;
        case 'G': mult = 1ll << 30; break;
        default: return std::nullopt;
        }
        if (pos + 1 != field.size())
            return std::nullopt;
    }
    return v * mult;
}

/** Contents of a small sysfs file, whitespace-trimmed; nullopt if
 * unreadable. */
std::optional<std::string>
readSysfs(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return std::nullopt;
    std::string s;
    std::getline(is, s);
    while (!s.empty() && std::isspace(static_cast<unsigned char>(
                             s.back())))
        s.pop_back();
    if (s.empty())
        return std::nullopt;
    return s;
}

/**
 * Probe cpu0's cache hierarchy from sysfs.  Returns true when at least
 * one level was found (partial answers still count; missing levels
 * keep the caller's defaults).
 */
bool
probeSysfs(MachineInfo &m)
{
    const std::string base = "/sys/devices/system/cpu/cpu0/cache/index";
    bool any = false;
    for (int i = 0; i < 8; ++i) {
        const std::string dir = base + std::to_string(i) + "/";
        auto level = readSysfs(dir + "level");
        auto type = readSysfs(dir + "type");
        auto size = readSysfs(dir + "size");
        if (!level || !type || !size)
            continue;
        auto bytes = parseSize(*size);
        if (!bytes || *bytes <= 0)
            continue;
        const int lv = std::atoi(level->c_str());
        // Instruction caches are irrelevant to the data working set.
        if (*type == "Instruction")
            continue;
        if (lv == 1)
            m.l1dBytes = *bytes;
        else if (lv == 2)
            m.l2Bytes = *bytes;
        else if (lv == 3)
            m.l3Bytes = *bytes;
        else
            continue;
        any = true;
        if (auto line = readSysfs(dir + "coherency_line_size")) {
            if (auto lb = parseSize(*line); lb && *lb > 0)
                m.lineBytes = *lb;
        }
    }
    return any;
}

/** Probe via sysconf; true when any cache level answered. */
bool
probeSysconf(MachineInfo &m)
{
    bool any = false;
#ifdef _SC_LEVEL1_DCACHE_SIZE
    if (long v = ::sysconf(_SC_LEVEL1_DCACHE_SIZE); v > 0) {
        m.l1dBytes = v;
        any = true;
    }
#endif
#ifdef _SC_LEVEL2_CACHE_SIZE
    if (long v = ::sysconf(_SC_LEVEL2_CACHE_SIZE); v > 0) {
        m.l2Bytes = v;
        any = true;
    }
#endif
#ifdef _SC_LEVEL3_CACHE_SIZE
    if (long v = ::sysconf(_SC_LEVEL3_CACHE_SIZE); v > 0) {
        m.l3Bytes = v;
        any = true;
    }
#endif
#ifdef _SC_LEVEL1_DCACHE_LINESIZE
    if (long v = ::sysconf(_SC_LEVEL1_DCACHE_LINESIZE); v > 0)
        m.lineBytes = v;
#endif
    return any;
}

/**
 * Probe the widest SIMD register set.  On x86-64 the compiler builtin
 * interrogates cpuid at runtime, so the answer tracks the machine the
 * binary runs on, matching the `-march=native` flags the JIT compiles
 * generated code with.
 */
void
probeVector(MachineInfo &m)
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx512f")) {
        m.vectorBits = 512;
        m.isa = "avx512";
    } else if (__builtin_cpu_supports("avx2")) {
        m.vectorBits = 256;
        m.isa = "avx2";
    } else if (__builtin_cpu_supports("avx")) {
        m.vectorBits = 256;
        m.isa = "avx";
    } else {
        m.vectorBits = 128;
        m.isa = "sse2";
    }
#elif defined(__aarch64__)
    m.vectorBits = 128;
    m.isa = "neon";
#else
    m.vectorBits = 128;
    m.isa = "generic";
#endif
}

} // namespace

std::optional<MachineInfo>
parseMachineSpec(const std::string &spec, MachineInfo base)
{
    std::vector<std::string> fields;
    std::string cur;
    for (char c : spec) {
        if (c == ',') {
            fields.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    fields.push_back(cur);
    if (fields.size() > 5)
        return std::nullopt;
    std::int64_t *sizes[3] = {&base.l1dBytes, &base.l2Bytes,
                              &base.l3Bytes};
    for (std::size_t i = 0; i < fields.size() && i < 3; ++i) {
        if (fields[i].empty())
            continue; // keep the default for this level
        auto v = parseSize(fields[i]);
        if (!v || *v <= 0)
            return std::nullopt;
        *sizes[i] = *v;
    }
    if (fields.size() >= 4 && !fields[3].empty()) {
        auto v = parseSize(fields[3]);
        if (!v || *v <= 0 || *v > 1 << 20)
            return std::nullopt;
        base.cores = int(*v);
    }
    if (fields.size() == 5 && !fields[4].empty()) {
        // SIMD register width in bits: a power of two in [64, 4096].
        auto v = parseSize(fields[4]);
        if (!v || *v < 64 || *v > 4096 || (*v & (*v - 1)) != 0)
            return std::nullopt;
        base.vectorBits = int(*v);
        base.isa = "env";
    }
    base.source = "env";
    return base;
}

MachineInfo
probeMachine()
{
    MachineInfo m;
    probeVector(m);
    if (const char *env = std::getenv("POLYMAGE_MACHINE")) {
        // Pass the probed vector width as the base so an override
        // without a fifth field keeps the real SIMD answer.
        if (auto parsed = parseMachineSpec(env, m))
            return *parsed;
        // Malformed override: fall through to the real probe rather
        // than silently running a nonsense machine model.
    }
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw > 0)
        m.cores = int(hw);
    if (probeSysfs(m))
        m.source = "sysfs";
    else if (probeSysconf(m))
        m.source = "sysconf";
    else
        m.source = "fallback";
    return m;
}

const MachineInfo &
machineInfo()
{
    // Probed once; the environment override is read at first use, so
    // tests that need a different machine must set POLYMAGE_MACHINE
    // before any compilation (or call probeMachine() directly).
    static const MachineInfo cached = probeMachine();
    return cached;
}

std::string
MachineInfo::toString() const
{
    std::ostringstream os;
    os << "L1d " << (l1dBytes >> 10) << "K, L2 " << (l2Bytes >> 10)
       << "K, L3 " << (l3Bytes >> 20) << "M, line " << lineBytes
       << "B, " << cores << " cores, " << isa << " " << vectorBits
       << "b (" << source << ")";
    return os.str();
}

std::string
MachineInfo::toJson() const
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("l1d_bytes").value(l1dBytes);
    w.key("l2_bytes").value(l2Bytes);
    w.key("l3_bytes").value(l3Bytes);
    w.key("line_bytes").value(lineBytes);
    w.key("cores").value(cores);
    w.key("vector_bits").value(vectorBits);
    w.key("isa").value(isa);
    w.key("source").value(source);
    w.endObject();
    return w.str();
}

} // namespace polymage::machine
