#include "support/diagnostics.hpp"

#include <iostream>

namespace polymage {

void
warn(const std::string &msg)
{
    std::cerr << "polymage: warning: " << msg << "\n";
}

} // namespace polymage
