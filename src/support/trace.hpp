/**
 * @file
 * Compile-phase tracing for the observability layer (`polymage::obs`).
 *
 * A TraceRegistry collects named, nested spans (wall-clock intervals)
 * with negligible overhead; the compiler driver wraps every phase of
 * the Fig. 4 pipeline in a ScopedTrace so clients can see where
 * compilation time goes.  Deep phases (alignment/scaling inside the
 * grouping heuristic) report into the thread-local *current* registry
 * installed by the driver, so no plumbing is threaded through the
 * optimizer APIs.
 *
 * Serialization follows the stable `polymage-trace-v1` schema
 * documented in docs/OBSERVABILITY.md and round-trips through
 * spansFromJson (used by the reporting layer and tests).
 */
#ifndef POLYMAGE_SUPPORT_TRACE_HPP
#define POLYMAGE_SUPPORT_TRACE_HPP

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace polymage::obs {

/** One traced interval.  Times are relative to the registry epoch. */
struct Span
{
    std::string name;
    /** Registry-assigned id (creation order). */
    int id = 0;
    /** Id of the enclosing span on the same thread; -1 for roots. */
    int parent = -1;
    /** Nesting depth (0 for roots). */
    int depth = 0;
    std::int64_t startNs = 0;
    /** -1 while the span is still open. */
    std::int64_t durationNs = -1;

    double
    seconds() const
    {
        return durationNs < 0 ? 0.0 : double(durationNs) * 1e-9;
    }
};

/**
 * Thread-safe collector of nested spans.  begin/end track a per-thread
 * stack of open spans, so concurrent compilations into one registry
 * nest correctly per thread.
 */
class TraceRegistry
{
  public:
    TraceRegistry();

    /** Open a span; returns its id (pass to end()). */
    int begin(const std::string &name);
    /** Close the span with the given id. */
    void end(int id);

    /** Snapshot of all spans so far (open spans have durationNs -1). */
    std::vector<Span> spans() const;
    /** Sum of root-span durations in seconds. */
    double totalSeconds() const;
    /** Drop all spans and reset the epoch. */
    void clear();

    /** Serialize to the polymage-trace-v1 JSON schema. */
    std::string toJson() const;

  private:
    mutable std::mutex mu_;
    std::vector<Span> spans_;
    std::map<std::thread::id, std::vector<int>> open_;
    std::chrono::steady_clock::time_point epoch_;
};

/** Parse spans back out of toJson() output (see OBSERVABILITY.md). */
std::vector<Span> spansFromJson(const std::string &json);

/** Serialize an externally assembled span list (same schema). */
std::string spansToJson(const std::vector<Span> &spans);

/** The thread-local current registry (nullptr when none installed). */
TraceRegistry *currentTrace();

/**
 * RAII installer of the thread-local current registry; restores the
 * previous one on destruction.
 */
class ScopedCurrent
{
  public:
    explicit ScopedCurrent(TraceRegistry *reg);
    ~ScopedCurrent();
    ScopedCurrent(const ScopedCurrent &) = delete;
    ScopedCurrent &operator=(const ScopedCurrent &) = delete;

  private:
    TraceRegistry *prev_;
};

/**
 * RAII span.  The single-argument form reports into currentTrace() and
 * is a no-op when no registry is installed, which keeps tracing free
 * for library users who never ask for it.
 */
class ScopedTrace
{
  public:
    explicit ScopedTrace(const std::string &name)
        : ScopedTrace(currentTrace(), name)
    {}
    ScopedTrace(TraceRegistry *reg, const std::string &name)
        : reg_(reg), id_(reg_ ? reg_->begin(name) : -1)
    {}
    ~ScopedTrace()
    {
        if (reg_)
            reg_->end(id_);
    }
    ScopedTrace(const ScopedTrace &) = delete;
    ScopedTrace &operator=(const ScopedTrace &) = delete;

  private:
    TraceRegistry *reg_;
    int id_;
};

/** Escape a string for embedding in a JSON document. */
std::string jsonEscape(const std::string &s);

/**
 * Minimal streaming JSON writer used by the reporting layer (trace
 * dumps, bench --profile-json).  Emits compact, valid JSON; the caller
 * is responsible for well-formed nesting.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();
    /** Object key; follow with a value or begin*() call. */
    JsonWriter &key(const std::string &k);
    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v) { return value(std::string(v)); }
    JsonWriter &value(double v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v) { return value(std::int64_t(v)); }
    JsonWriter &value(bool v);
    /** Splice an already-serialized JSON value in value position. */
    JsonWriter &raw(const std::string &json);

    const std::string &str() const { return out_; }

  private:
    void separate();

    std::string out_;
    /** Whether a value was already written at each nesting level. */
    std::vector<bool> hasItem_{false};
    bool afterKey_ = false;
};

} // namespace polymage::obs

#endif // POLYMAGE_SUPPORT_TRACE_HPP
