/**
 * @file
 * Exact rational arithmetic.
 *
 * Fourier–Motzkin elimination and tile-slope computation require exact
 * fractions (slopes of bounding hyperplanes are ratios of dependence
 * distances to level gaps).  Rational keeps a canonical form: reduced
 * terms and a strictly positive denominator.
 */
#ifndef POLYMAGE_SUPPORT_RATIONAL_HPP
#define POLYMAGE_SUPPORT_RATIONAL_HPP

#include <compare>
#include <cstdint>
#include <ostream>

#include "support/diagnostics.hpp"
#include "support/intmath.hpp"

namespace polymage {

/** An exact rational number num/den with den > 0 and gcd(num, den) == 1. */
class Rational
{
  public:
    constexpr Rational() : num_(0), den_(1) {}
    constexpr Rational(std::int64_t v) : num_(v), den_(1) {}

    /** Construct num/den; den may be negative or zero (zero is an error). */
    constexpr
    Rational(std::int64_t num, std::int64_t den)
        : num_(num), den_(den)
    {
        normalize();
    }

    constexpr std::int64_t num() const { return num_; }
    constexpr std::int64_t den() const { return den_; }

    constexpr bool isInteger() const { return den_ == 1; }
    constexpr bool isZero() const { return num_ == 0; }

    /** Integer value; requires isInteger(). */
    constexpr std::int64_t
    asInteger() const
    {
        PM_ASSERT(den_ == 1, "rational is not an integer");
        return num_;
    }

    /** Largest integer <= this. */
    constexpr std::int64_t floor() const { return floorDiv(num_, den_); }
    /** Smallest integer >= this. */
    constexpr std::int64_t ceil() const { return ceilDiv(num_, den_); }

    constexpr Rational
    operator-() const
    {
        Rational r;
        r.num_ = -num_;
        r.den_ = den_;
        return r;
    }

    constexpr Rational
    operator+(const Rational &o) const
    {
        return Rational(num_ * o.den_ + o.num_ * den_, den_ * o.den_);
    }

    constexpr Rational
    operator-(const Rational &o) const
    {
        return Rational(num_ * o.den_ - o.num_ * den_, den_ * o.den_);
    }

    constexpr Rational
    operator*(const Rational &o) const
    {
        return Rational(num_ * o.num_, den_ * o.den_);
    }

    constexpr Rational
    operator/(const Rational &o) const
    {
        PM_ASSERT(o.num_ != 0, "rational division by zero");
        return Rational(num_ * o.den_, den_ * o.num_);
    }

    constexpr Rational &operator+=(const Rational &o) { return *this = *this + o; }
    constexpr Rational &operator-=(const Rational &o) { return *this = *this - o; }
    constexpr Rational &operator*=(const Rational &o) { return *this = *this * o; }
    constexpr Rational &operator/=(const Rational &o) { return *this = *this / o; }

    constexpr bool
    operator==(const Rational &o) const
    {
        return num_ == o.num_ && den_ == o.den_;
    }

    constexpr std::strong_ordering
    operator<=>(const Rational &o) const
    {
        // Cross-multiply; denominators are positive so order is preserved.
        return num_ * o.den_ <=> o.num_ * den_;
    }

    /** Absolute value. */
    constexpr Rational
    abs() const
    {
        return num_ < 0 ? -*this : *this;
    }

    double toDouble() const { return double(num_) / double(den_); }

  private:
    constexpr void
    normalize()
    {
        PM_ASSERT(den_ != 0, "rational with zero denominator");
        if (den_ < 0) {
            num_ = -num_;
            den_ = -den_;
        }
        std::int64_t g = gcd64(num_, den_);
        if (g > 1) {
            num_ /= g;
            den_ /= g;
        }
    }

    std::int64_t num_;
    std::int64_t den_;
};

inline std::ostream &
operator<<(std::ostream &os, const Rational &r)
{
    os << r.num();
    if (!r.isInteger())
        os << "/" << r.den();
    return os;
}

} // namespace polymage

#endif // POLYMAGE_SUPPORT_RATIONAL_HPP
