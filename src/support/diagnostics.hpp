/**
 * @file
 * Error reporting for the PolyMage compiler.
 *
 * Two kinds of failures, following the fatal/panic distinction used in
 * systems simulators:
 *
 *  - SpecError: the user's pipeline specification is invalid (cycles,
 *    out-of-bounds accesses, ambiguous cases, ...).  Thrown as an
 *    exception so embedding applications can recover and report.
 *  - InternalError: a compiler invariant was violated; indicates a bug in
 *    PolyMage itself.  Raised via PM_ASSERT / internalError().
 */
#ifndef POLYMAGE_SUPPORT_DIAGNOSTICS_HPP
#define POLYMAGE_SUPPORT_DIAGNOSTICS_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace polymage {

/** Exception thrown for invalid user pipeline specifications. */
class SpecError : public std::runtime_error
{
  public:
    explicit SpecError(const std::string &msg)
        : std::runtime_error("polymage: invalid specification: " + msg)
    {}
};

/** Exception thrown when a compiler-internal invariant is violated. */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string &msg)
        : std::logic_error("polymage: internal error: " + msg)
    {}
};

/** Throw a SpecError built from streamable arguments. */
template <typename... Args>
[[noreturn]] void
specError(const Args &...args)
{
    std::ostringstream os;
    (os << ... << args);
    throw SpecError(os.str());
}

/** Throw an InternalError built from streamable arguments. */
template <typename... Args>
[[noreturn]] void
internalError(const Args &...args)
{
    std::ostringstream os;
    (os << ... << args);
    throw InternalError(os.str());
}

/** Emit a non-fatal warning on stderr. */
void warn(const std::string &msg);

} // namespace polymage

/** Assert a compiler-internal invariant; throws InternalError on failure. */
#define PM_ASSERT(cond, msg)                                                 \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::polymage::internalError("assertion `", #cond, "` failed at ",  \
                                      __FILE__, ":", __LINE__, ": ", msg);   \
        }                                                                    \
    } while (0)

#endif // POLYMAGE_SUPPORT_DIAGNOSTICS_HPP
