/**
 * @file
 * Integer arithmetic helpers used across the compiler and mirrored in
 * generated code: floor/ceil division with mathematically correct behaviour
 * for negative operands, gcd/lcm, and power-of-two checks.
 */
#ifndef POLYMAGE_SUPPORT_INTMATH_HPP
#define POLYMAGE_SUPPORT_INTMATH_HPP

#include <cstdint>
#include <numeric>

#include "support/diagnostics.hpp"

namespace polymage {

/** Floor division: largest q with q*b <= a. Requires b != 0. */
constexpr std::int64_t
floorDiv(std::int64_t a, std::int64_t b)
{
    std::int64_t q = a / b;
    std::int64_t r = a % b;
    if (r != 0 && ((r < 0) != (b < 0)))
        --q;
    return q;
}

/** Ceiling division: smallest q with q*b >= a. Requires b != 0. */
constexpr std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return -floorDiv(-a, b);
}

/** Mathematical modulo with result in [0, |b|). */
constexpr std::int64_t
floorMod(std::int64_t a, std::int64_t b)
{
    return a - floorDiv(a, b) * b;
}

/** Greatest common divisor of the absolute values; gcd(0, 0) == 0. */
constexpr std::int64_t
gcd64(std::int64_t a, std::int64_t b)
{
    return std::gcd(a, b);
}

/** Least common multiple of the absolute values. */
constexpr std::int64_t
lcm64(std::int64_t a, std::int64_t b)
{
    return std::lcm(a, b);
}

/** True iff v is a positive power of two. */
constexpr bool
isPowerOfTwo(std::int64_t v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

} // namespace polymage

#endif // POLYMAGE_SUPPORT_INTMATH_HPP
