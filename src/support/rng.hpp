/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**) used by the
 * synthetic image generators and the property-test harnesses.  The
 * standard library engines are avoided so streams are reproducible across
 * library implementations.
 */
#ifndef POLYMAGE_SUPPORT_RNG_HPP
#define POLYMAGE_SUPPORT_RNG_HPP

#include <cstdint>

namespace polymage {

/** Small, fast, seedable PRNG with a reproducible stream. */
class Rng
{
  public:
    explicit
    Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding as recommended by the xoshiro authors.
        std::uint64_t z = seed;
        for (auto &s : state_) {
            z += 0x9e3779b97f4a7c15ull;
            std::uint64_t t = z;
            t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ull;
            t = (t ^ (t >> 27)) * 0x94d049bb133111ebull;
            s = t ^ (t >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        auto rotl = [](std::uint64_t x, int k) {
            return (x << k) | (x >> (64 - k));
        };
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [lo, hi] (inclusive). Requires lo <= hi. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        const std::uint64_t span = std::uint64_t(hi - lo) + 1;
        return lo + std::int64_t(next() % span);
    }

    /** Uniform double in [0, 1). */
    double
    uniform01()
    {
        return double(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Uniform double in [lo, hi). */
    double
    uniformReal(double lo, double hi)
    {
        return lo + uniform01() * (hi - lo);
    }

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p) { return uniform01() < p; }

  private:
    std::uint64_t state_[4];
};

} // namespace polymage

#endif // POLYMAGE_SUPPORT_RNG_HPP
