#include "support/trace.hpp"

#include <cctype>
#include <cstdio>

#include "support/diagnostics.hpp"

namespace polymage::obs {

//----------------------------------------------------------------------
// TraceRegistry
//----------------------------------------------------------------------

TraceRegistry::TraceRegistry()
    : epoch_(std::chrono::steady_clock::now())
{}

int
TraceRegistry::begin(const std::string &name)
{
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(mu_);
    Span s;
    s.name = name;
    s.id = int(spans_.size());
    s.startNs = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    now - epoch_)
                    .count();
    auto &stack = open_[std::this_thread::get_id()];
    if (!stack.empty()) {
        s.parent = stack.back();
        s.depth = spans_[std::size_t(s.parent)].depth + 1;
    }
    stack.push_back(s.id);
    spans_.push_back(std::move(s));
    return spans_.back().id;
}

void
TraceRegistry::end(int id)
{
    const auto now = std::chrono::steady_clock::now();
    std::lock_guard<std::mutex> lock(mu_);
    PM_ASSERT(id >= 0 && id < int(spans_.size()), "unknown span id");
    Span &s = spans_[std::size_t(id)];
    PM_ASSERT(s.durationNs < 0, "span ended twice");
    s.durationNs =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_)
            .count() -
        s.startNs;
    auto &stack = open_[std::this_thread::get_id()];
    PM_ASSERT(!stack.empty() && stack.back() == id,
              "span end out of order");
    stack.pop_back();
}

std::vector<Span>
TraceRegistry::spans() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
}

double
TraceRegistry::totalSeconds() const
{
    std::lock_guard<std::mutex> lock(mu_);
    double t = 0;
    for (const auto &s : spans_) {
        if (s.parent < 0)
            t += s.durationNs < 0 ? 0.0 : double(s.durationNs) * 1e-9;
    }
    return t;
}

void
TraceRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    spans_.clear();
    open_.clear();
    epoch_ = std::chrono::steady_clock::now();
}

std::string
TraceRegistry::toJson() const
{
    return spansToJson(spans());
}

//----------------------------------------------------------------------
// Current registry (thread-local)
//----------------------------------------------------------------------

namespace {
thread_local TraceRegistry *tls_current = nullptr;
} // namespace

TraceRegistry *
currentTrace()
{
    return tls_current;
}

ScopedCurrent::ScopedCurrent(TraceRegistry *reg) : prev_(tls_current)
{
    tls_current = reg;
}

ScopedCurrent::~ScopedCurrent()
{
    tls_current = prev_;
}

//----------------------------------------------------------------------
// JSON emission
//----------------------------------------------------------------------

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::separate()
{
    if (afterKey_) {
        afterKey_ = false;
        return;
    }
    if (hasItem_.back())
        out_ += ',';
    hasItem_.back() = true;
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    out_ += '{';
    hasItem_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    PM_ASSERT(hasItem_.size() > 1, "unbalanced endObject");
    hasItem_.pop_back();
    out_ += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    out_ += '[';
    hasItem_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    PM_ASSERT(hasItem_.size() > 1, "unbalanced endArray");
    hasItem_.pop_back();
    out_ += ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    separate();
    out_ += '"' + jsonEscape(k) + "\":";
    afterKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separate();
    out_ += '"' + jsonEscape(v) + '"';
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    separate();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::raw(const std::string &json)
{
    separate();
    out_ += json;
    return *this;
}

std::string
spansToJson(const std::vector<Span> &spans)
{
    JsonWriter w;
    w.beginObject();
    w.key("schema").value("polymage-trace-v1");
    w.key("spans").beginArray();
    for (const auto &s : spans) {
        w.beginObject();
        w.key("name").value(s.name);
        w.key("id").value(s.id);
        w.key("parent").value(s.parent);
        w.key("depth").value(s.depth);
        w.key("start_ns").value(s.startNs);
        w.key("duration_ns").value(s.durationNs);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

//----------------------------------------------------------------------
// JSON parsing (round-trip of the trace schema)
//----------------------------------------------------------------------

namespace {

/** Cursor over a JSON document; parses just what the schema needs. */
struct Parser
{
    const std::string &s;
    std::size_t i = 0;

    void
    ws()
    {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
    }

    bool
    eat(char c)
    {
        ws();
        if (i < s.size() && s[i] == c) {
            ++i;
            return true;
        }
        return false;
    }

    void
    expect(char c)
    {
        if (!eat(c))
            internalError("trace JSON: expected '", c, "' at offset ",
                          i);
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (i < s.size() && s[i] != '"') {
            char c = s[i++];
            if (c == '\\' && i < s.size()) {
                char e = s[i++];
                switch (e) {
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    PM_ASSERT(i + 4 <= s.size(),
                              "trace JSON: bad \\u escape");
                    out += char(std::stoi(s.substr(i, 4), nullptr, 16));
                    i += 4;
                    break;
                  }
                  default: out += e;
                }
            } else {
                out += c;
            }
        }
        expect('"');
        return out;
    }

    std::int64_t
    integer()
    {
        ws();
        std::size_t end = i;
        if (end < s.size() && (s[end] == '-' || s[end] == '+'))
            ++end;
        while (end < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[end])))
            ++end;
        PM_ASSERT(end > i, "trace JSON: expected integer");
        const std::int64_t v = std::stoll(s.substr(i, end - i));
        i = end;
        return v;
    }
};

} // namespace

std::vector<Span>
spansFromJson(const std::string &json)
{
    Parser p{json};
    p.expect('{');
    std::vector<Span> out;
    bool first_key = true;
    while (!p.eat('}')) {
        if (!first_key)
            p.expect(',');
        first_key = false;
        const std::string k = p.string();
        p.expect(':');
        if (k == "schema") {
            const std::string v = p.string();
            PM_ASSERT(v == "polymage-trace-v1",
                      "trace JSON: unknown schema");
        } else if (k == "spans") {
            p.expect('[');
            bool first = true;
            while (!p.eat(']')) {
                if (!first)
                    p.expect(',');
                first = false;
                Span s;
                p.expect('{');
                bool firstf = true;
                while (!p.eat('}')) {
                    if (!firstf)
                        p.expect(',');
                    firstf = false;
                    const std::string f = p.string();
                    p.expect(':');
                    if (f == "name")
                        s.name = p.string();
                    else if (f == "id")
                        s.id = int(p.integer());
                    else if (f == "parent")
                        s.parent = int(p.integer());
                    else if (f == "depth")
                        s.depth = int(p.integer());
                    else if (f == "start_ns")
                        s.startNs = p.integer();
                    else if (f == "duration_ns")
                        s.durationNs = p.integer();
                    else
                        internalError("trace JSON: unknown field '", f,
                                      "'");
                }
                out.push_back(std::move(s));
            }
        } else {
            internalError("trace JSON: unknown key '", k, "'");
        }
    }
    return out;
}

} // namespace polymage::obs
