/**
 * @file
 * Dense, dtype-erased, row-major N-dimensional buffers used for
 * pipeline inputs, outputs, and interpreter intermediates.  Storage is
 * 64-byte aligned for vectorised kernels.
 */
#ifndef POLYMAGE_RUNTIME_BUFFER_HPP
#define POLYMAGE_RUNTIME_BUFFER_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "dsl/types.hpp"
#include "support/diagnostics.hpp"

namespace polymage::rt {

/**
 * A dense row-major buffer.  The last dimension is contiguous.
 * Copyable (deep) and movable.
 */
class Buffer
{
  public:
    /** An empty buffer (no storage). */
    Buffer() = default;

    /** Allocate a zero-initialised buffer. */
    Buffer(dsl::DType dtype, std::vector<std::int64_t> dims);

    Buffer(const Buffer &o);
    Buffer &operator=(const Buffer &o);
    Buffer(Buffer &&) = default;
    Buffer &operator=(Buffer &&) = default;

    bool valid() const { return data_ != nullptr; }
    dsl::DType dtype() const { return dtype_; }
    const std::vector<std::int64_t> &dims() const { return dims_; }
    int rank() const { return int(dims_.size()); }

    /** Total number of elements. */
    std::int64_t numel() const { return numel_; }
    /** Total storage size in bytes. */
    std::int64_t bytes() const
    {
        return numel_ * std::int64_t(dsl::dtypeSize(dtype_));
    }

    void *data() { return data_.get(); }
    const void *data() const { return data_.get(); }

    /** Typed pointer; T must match the element size. */
    template <typename T>
    T *
    dataAs()
    {
        PM_ASSERT(sizeof(T) == dsl::dtypeSize(dtype_),
                  "element size mismatch");
        return reinterpret_cast<T *>(data_.get());
    }

    template <typename T>
    const T *
    dataAs() const
    {
        PM_ASSERT(sizeof(T) == dsl::dtypeSize(dtype_),
                  "element size mismatch");
        return reinterpret_cast<const T *>(data_.get());
    }

    /** Flat index of a coordinate vector (row-major). */
    std::int64_t flatIndex(const std::int64_t *coords) const;

    /** True iff every coordinate is within [0, dim). */
    bool inBounds(const std::int64_t *coords) const;

    /** Element value converted to double (any dtype). */
    double loadAsDouble(std::int64_t flat) const;
    /** Store a double, coerced to the buffer dtype (C cast semantics). */
    void storeFromDouble(std::int64_t flat, double v);

    /** Set every element to the given value (coerced). */
    void fill(double v);

    /**
     * Largest absolute elementwise difference to another buffer of the
     * same shape.
     */
    double maxAbsDiff(const Buffer &o) const;

  private:
    struct Free
    {
        void operator()(void *p) const { std::free(p); }
    };

    dsl::DType dtype_ = dsl::DType::Float;
    std::vector<std::int64_t> dims_;
    std::vector<std::int64_t> strides_;
    std::int64_t numel_ = 0;
    std::unique_ptr<void, Free> data_;
};

/**
 * A reusable pool of 64-byte-aligned heap blocks, backing the
 * intermediate-buffer slots of generated pipelines (the storage
 * planner's reuse plan).  acquire() hands out the smallest retained
 * free block that fits, allocating only when none does, so a pipeline
 * called repeatedly with the same parameters performs zero heap
 * allocations after the first call and touches already-faulted pages.
 *
 * Thread-safe: concurrent acquire/release from parallel pipeline
 * invocations interleave correctly (the pool simply grows to the
 * concurrent working-set peak).
 */
class BufferPool
{
  public:
    BufferPool() = default;
    BufferPool(const BufferPool &) = delete;
    BufferPool &operator=(const BufferPool &) = delete;
    /** Frees every owned block (none may still be in use). */
    ~BufferPool();

    /**
     * A 64-byte-aligned block of at least @p bytes (rounded up to the
     * alignment granule), contents unspecified.  Must be returned via
     * release().
     */
    void *acquire(std::size_t bytes);

    /** Return a block obtained from acquire(); null is ignored. */
    void release(void *p) noexcept;

    /** Free all currently idle blocks (in-use blocks are unaffected). */
    void trim();

    /** Point-in-time allocation counters. */
    struct Stats
    {
        /** Bytes of all owned blocks (the pool's peak footprint). */
        std::int64_t bytesOwned = 0;
        /** Bytes of blocks currently acquired. */
        std::int64_t bytesInUse = 0;
        /** High-water mark of bytesInUse. */
        std::int64_t peakBytesInUse = 0;
        /** Real heap allocations performed (misses). */
        std::uint64_t blockAllocs = 0;
        /** Total acquire() calls; hits = acquires - blockAllocs. */
        std::uint64_t acquires = 0;
    };
    Stats stats() const;

  private:
    struct Block
    {
        std::size_t bytes = 0;
        bool inUse = false;
    };

    mutable std::mutex mu_;
    std::map<void *, Block> blocks_;
    std::multimap<std::size_t, void *> free_; // idle blocks by size
    std::int64_t bytesOwned_ = 0;
    std::int64_t bytesInUse_ = 0;
    std::int64_t peakBytesInUse_ = 0;
    std::uint64_t blockAllocs_ = 0;
    std::uint64_t acquires_ = 0;
};

} // namespace polymage::rt

#endif // POLYMAGE_RUNTIME_BUFFER_HPP
