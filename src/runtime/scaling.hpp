/**
 * @file
 * Multicore scaling model.  The container this reproduction runs in has
 * a single core, so the paper's 1..16-core measurements (Table 2,
 * Fig. 10) are predicted from measured per-task costs: generated code
 * is embarrassingly parallel across overlapped tiles (no inter-tile
 * communication -- the property the paper exploits), so the time on p
 * workers is the sum over barrier-separated parallel phases of an LPT
 * (longest-processing-time) list-scheduling makespan, plus the
 * measured serial portion.  Load imbalance from uneven boundary tiles
 * is captured; shared-bandwidth saturation is not (documented in
 * EXPERIMENTS.md).
 */
#ifndef POLYMAGE_RUNTIME_SCALING_HPP
#define POLYMAGE_RUNTIME_SCALING_HPP

#include "runtime/executor.hpp"

namespace polymage::rt {

/**
 * LPT makespan of the given task costs on @p workers workers.
 */
double lptMakespan(const std::vector<double> &costs, int workers);

/**
 * Predicted wall time of a profiled run on @p workers workers:
 * serial time + sum over phases of the phase's LPT makespan.
 */
double predictTime(const TaskProfile &profile, int workers);

/**
 * Predicted speedup curve over the given worker counts, relative to
 * the 1-worker prediction.
 */
std::vector<double> predictSpeedups(const TaskProfile &profile,
                                    const std::vector<int> &workers);

} // namespace polymage::rt

#endif // POLYMAGE_RUNTIME_SCALING_HPP
