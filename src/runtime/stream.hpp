/**
 * @file
 * Stateful streaming sessions over compiled pipelines
 * (docs/STREAMING.md): rt::StreamExecutable owns the persistent ring
 * buffers of a CompiledPipeline's StreamPlan and a frame counter, and
 * advances one frame per step().  Rings rotate by index — the slot
 * written at frame t is t mod depth, a tap at delay k reads slot
 * (t-k) mod depth — and are never copied for function feedback: the
 * ring slot itself is swapped into the entry point's output pointer
 * table.  All buffers (rings, outputs, pointer tables) are allocated
 * at session open, so the steady-state frame path performs zero
 * buffer allocations (the backing BufferPool plateaus after the
 * first frame; assert via memoryStats().poolBlockAllocs).
 */
#ifndef POLYMAGE_RUNTIME_STREAM_HPP
#define POLYMAGE_RUNTIME_STREAM_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/executor.hpp"
#include "runtime/scheduler.hpp"

namespace polymage::rt {

/**
 * A streaming session: fixed parameters, persistent rings, one
 * frame per step().  Not thread-safe — feed frames from one thread
 * at a time (serve::Engine sessions guarantee this with a per-session
 * FIFO).  Multiple sessions may share one Executable.
 */
class StreamExecutable
{
  public:
    /**
     * Open a session.  @p exe must be compiled from a streaming spec
     * (info().stream.streaming); @p params are fixed for the session
     * lifetime.  Rings are zero-initialised: taps of the first k
     * frames read zeros (warm-up semantics).
     */
    StreamExecutable(std::shared_ptr<const Executable> exe,
                     std::vector<std::int64_t> params);

    /** Build + open in one go (taskABI-enabled serving options). */
    static StreamExecutable build(const dsl::PipelineSpec &spec,
                                  std::vector<std::int64_t> params,
                                  const CompileOptions &opts =
                                      CompileOptions::optimized());

    /**
     * Advance one frame: @p inputs are the declared inputs (taps
     * excluded), in ABI order.  Returns the output buffers; only the
     * first declaredOutputs() entries are the frame's live-outs
     * (trailing entries are internal feedback placeholders).  The
     * returned buffers are owned by the session and overwritten by
     * the next step().
     *
     * When @p sched is non-null and the variant has a task-granular
     * entry, the frame's tiles drain through the shared scheduler
     * (docs/SERVING.md "Scheduling") instead of a private OpenMP
     * region.
     */
    const std::vector<Buffer> &
    step(const std::vector<const Buffer *> &inputs,
         TileScheduler *sched = nullptr);

    /** Frames completed since open (== the next frame index). */
    long long frame() const { return frame_; }

    /** Outputs the caller sees per frame (feedback ones excluded). */
    int declaredOutputs() const { return plan_->declaredOutputs; }
    /** Inputs the caller supplies per frame (taps excluded). */
    int declaredInputs() const { return plan_->declaredInputs; }

    /** Output buffers of the most recent frame (see step()). */
    const std::vector<Buffer> &outputs() const { return outputs_; }

    /**
     * Executable memory stats plus this session's ring footprint
     * (MemoryStats::ringBuffers / ringBytes).
     */
    MemoryStats memoryStats() const;

    const Executable &executable() const { return *exe_; }
    const core::StreamPlan &plan() const { return *plan_; }

  private:
    std::shared_ptr<const Executable> exe_;
    const core::StreamPlan *plan_ = nullptr;
    std::vector<std::int64_t> params_;
    /** rings_[r][j]: ring r's slot for frames with t mod depth == j. */
    std::vector<std::vector<Buffer>> rings_;
    /** Persistent output table: declared outputs are real buffers,
     * synthetic feedback positions are empty placeholders that ring
     * slots swap through during a step. */
    std::vector<Buffer> outputs_;
    std::vector<const Buffer *> callInputs_;
    long long frame_ = 0;
};

} // namespace polymage::rt

#endif // POLYMAGE_RUNTIME_STREAM_HPP
