/**
 * @file
 * Shared work-stealing tile-task scheduler (docs/SERVING.md
 * "Scheduling"): a fixed pool of worker threads, each owning a
 * Chase-Lev deque of task chunks, executing the phase-ordered task
 * lists that task-ABI pipeline entries expose (GeneratedCode::
 * taskEntry).  One scheduler serves every in-flight request of a
 * serving engine, so tile tasks from concurrent requests interleave
 * on one thread pool instead of each request opening its own OpenMP
 * region: a long request's tail tiles no longer serialise behind an
 * idle barrier while other requests wait for threads.
 *
 * Execution model: a Job is a sequence of phases; every phase is a
 * closed list of independent tasks [0, count).  Tasks are grouped
 * into chunks (grain-many consecutive tasks) that workers push to
 * their own deque bottom and thieves steal from the top, victim
 * chosen by xorshift.  The worker that finishes a phase's last chunk
 * advances the job to its next phase and seeds the new chunks onto
 * its own deque -- the per-job phase barrier costs one atomic
 * decrement per chunk, never a pool-wide join.
 */
#ifndef POLYMAGE_RUNTIME_SCHEDULER_HPP
#define POLYMAGE_RUNTIME_SCHEDULER_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace polymage::rt {

/** Point-in-time scheduler counters (the `scheduler` object of
 * polymage-serve-v1 entries, docs/OBSERVABILITY.md). */
struct SchedulerStats
{
    /** Individual tasks executed (tile iterations, not chunks). */
    std::uint64_t tasksExecuted = 0;
    /** Chunks run (deque-pop plus steal grain units). */
    std::uint64_t chunksExecuted = 0;
    /** Successful steals (a chunk taken from another worker). */
    std::uint64_t steals = 0;
    /** Steal attempts, successful or not. */
    std::uint64_t stealAttempts = 0;
    /** Jobs completed (one job per request phase sequence). */
    std::uint64_t jobsCompleted = 0;

    double stealFailRate() const
    {
        return stealAttempts == 0
                   ? 0.0
                   : double(stealAttempts - steals) /
                         double(stealAttempts);
    }
};

struct SchedJob;

/** One schedulable unit: tasks [lo, hi] of one job phase. */
struct Chunk
{
    SchedJob *job = nullptr;
    long long phase = 0;
    long long lo = 0;
    long long hi = 0;
};

/**
 * The shared pool.  submit() may be called from any thread; the
 * returned Ticket is waited on by the submitter while the pool's own
 * workers (plus thieves) execute the tasks.  Destruction waits for
 * in-flight jobs and joins the workers.
 */
struct SchedulerOptions
{
    /** Worker threads; 0 means hardware concurrency.  Negative means
     * a thread-less pool: no workers are spawned and every chunk is
     * executed by helpWhile() callers.  wait() without a concurrent
     * helper never completes on a thread-less pool. */
    int workers = 0;
    /**
     * Tasks per chunk floor.  The effective grain of a phase is
     * max(grain, count / (workers * kChunksPerWorker)) so huge
     * phases do not flood the deques while small ones still spread
     * across the pool.
     */
    long long grain = 1;
};

class TileScheduler
{
  public:
    using Options = SchedulerOptions;

    /**
     * Runs tasks [lo, hi] of @p phase serially in the calling worker
     * thread (the task-ABI contract of GeneratedCode::taskEntry).
     */
    using PhaseRunner =
        std::function<void(long long phase, long long lo, long long hi)>;

    /** Handle of one submitted job; wait() through the scheduler. */
    class Ticket
    {
      public:
        Ticket() = default;
        explicit operator bool() const { return job_ != nullptr; }

      private:
        friend class TileScheduler;
        std::shared_ptr<SchedJob> job_;
    };

    explicit TileScheduler(Options opts = {});
    TileScheduler(const TileScheduler &) = delete;
    TileScheduler &operator=(const TileScheduler &) = delete;
    ~TileScheduler();

    /**
     * Submit one job: phases execute in order, tasks of each phase
     * spread over the pool.  @p phase_counts holds the task count per
     * phase (zero-count phases are skipped).  The runner must be
     * callable concurrently from multiple workers for disjoint task
     * ranges of one phase.
     */
    Ticket submit(PhaseRunner run,
                  std::vector<long long> phase_counts);

    /**
     * Block until the job completes everywhere.  Returns the first
     * error any of its tasks threw ("" on success); every remaining
     * task of a failed job is drained without running.
     */
    std::string wait(const Ticket &t);

    /**
     * Like wait(), but the calling thread participates: it drains the
     * injection queue and steals chunks (of any live job) until @p t
     * completes, only blocking when nothing is runnable.  This is the
     * serving engine's wait -- the submitter becomes an extra worker
     * instead of paying a cross-thread handoff per request, which on
     * small machines is the difference between the shared pool
     * beating and losing to inline per-request execution.
     */
    std::string helpWhile(const Ticket &t);

    int workers() const { return int(threads_.size()); }
    SchedulerStats stats() const;

  private:
    struct Worker;

    void workerLoop(int index);
    /** Run one chunk and retire it against its job.  @p self is null
     * for external helpers (helpWhile callers), whose next-phase
     * seeds spill to the injection queue. */
    void runChunk(Chunk c, Worker *self);
    /** Phase bookkeeping once a chunk's tasks finished. */
    void retireChunk(SchedJob &job, long long tasks, Worker *self);
    /** Chunk descriptors of @p job's current phase. */
    static std::vector<Chunk> chunksOf(SchedJob &job, int workers,
                                       long long grain);

    Options opts_;
    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    /** Overflow / injection path: submit() and deque-full pushes land
     * here; idle workers drain it before sleeping.  live_ pins every
     * in-flight job (chunks hold raw pointers into it). */
    std::mutex injectMu_;
    std::deque<Chunk> inject_;
    std::vector<std::shared_ptr<SchedJob>> live_;
    std::condition_variable wake_;
    bool stopping_ = false;

    std::atomic<std::uint64_t> tasksExecuted_{0};
    std::atomic<std::uint64_t> chunksExecuted_{0};
    std::atomic<std::uint64_t> steals_{0};
    std::atomic<std::uint64_t> stealAttempts_{0};
    std::atomic<std::uint64_t> jobsCompleted_{0};
};

} // namespace polymage::rt

#endif // POLYMAGE_RUNTIME_SCHEDULER_HPP
