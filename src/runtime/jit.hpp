/**
 * @file
 * JIT harness: compiles generated C++ with the system compiler into a
 * shared object and loads it, mirroring how PolyMage's generated code
 * was built with icc in the paper (here: g++ -O3 -march=native
 * -fopenmp).
 */
#ifndef POLYMAGE_RUNTIME_JIT_HPP
#define POLYMAGE_RUNTIME_JIT_HPP

#include <memory>
#include <string>

namespace polymage::rt {

/** Flags for the downstream C++ compiler. */
struct JitOptions
{
    std::string compiler = "g++";
    std::string optLevel = "-O3";
    bool nativeArch = true;
    bool openmp = true;
    /** When false, auto-vectorisation is disabled (-fno-tree-vectorize). */
    bool vectorize = true;
    /** Keep the temp directory (sources, errors) for inspection. */
    bool keepFiles = false;
    std::string extraFlags;
    /**
     * Use the persistent object cache: shared objects are keyed by a
     * hash of (source, flags, compiler version) and stored under
     * $XDG_CACHE_HOME/polymage/jit, so rebuilding an unchanged pipeline
     * skips the compiler entirely.  Disable per-module here or
     * process-wide with POLYMAGE_JIT_CACHE=0.
     */
    bool cache = true;
};

/** A compiled and loaded shared object. */
class JitModule
{
  public:
    /**
     * Compile @p source and load the resulting shared object.
     * @throws InternalError with the compiler diagnostics on failure.
     */
    static JitModule compile(const std::string &source,
                             const JitOptions &opts = {});

    JitModule(JitModule &&) noexcept;
    JitModule &operator=(JitModule &&) noexcept;
    JitModule(const JitModule &) = delete;
    JitModule &operator=(const JitModule &) = delete;
    ~JitModule();

    /** Resolve a symbol; throws InternalError when missing. */
    void *symbol(const std::string &name) const;

    /** Path of the generated source file. */
    const std::string &sourcePath() const { return sourcePath_; }

    /** True when the shared object was loaded from the persistent
     * cache without invoking the compiler. */
    bool fromCache() const { return fromCache_; }

  private:
    JitModule() = default;

    void *handle_ = nullptr;
    std::string dir_;
    std::string sourcePath_;
    bool keep_ = false;
    bool fromCache_ = false;
};

} // namespace polymage::rt

#endif // POLYMAGE_RUNTIME_JIT_HPP
