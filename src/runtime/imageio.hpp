/**
 * @file
 * Minimal binary PGM (P5) / PPM (P6) image I/O for the example
 * applications: dependency-free, 8-bit.
 */
#ifndef POLYMAGE_RUNTIME_IMAGEIO_HPP
#define POLYMAGE_RUNTIME_IMAGEIO_HPP

#include <string>

#include "runtime/buffer.hpp"

namespace polymage::rt {

/**
 * Write an image as PGM (rank-2 buffer) or PPM (rank-3 with the
 * channel dimension outermost and extent 3).  Float buffers are
 * assumed in [0, 1] and quantised; integer buffers are clamped to
 * 0..255.
 *
 * @throws SpecError on unsupported shapes or I/O failure.
 */
void writeImage(const Buffer &img, const std::string &path);

/**
 * Read a binary PGM/PPM file: PGM yields a rank-2 UChar buffer, PPM a
 * rank-3 UChar buffer with the channel dimension outermost.
 */
Buffer readImage(const std::string &path);

/** Convert a UChar buffer to Float in [0, 1). */
Buffer toFloat(const Buffer &img);

} // namespace polymage::rt

#endif // POLYMAGE_RUNTIME_IMAGEIO_HPP
