#include "runtime/executor.hpp"

#include <algorithm>

#include "interp/interpreter.hpp"

namespace polymage::rt {

Executable
Executable::build(const dsl::PipelineSpec &spec,
                  const CompileOptions &opts, JitOptions jit)
{
    // One registry for the whole build so the driver's compile phases
    // and the JIT share a single timeline.
    obs::TraceRegistry reg;
    obs::ScopedCurrent install(&reg);

    Executable exe;
    exe.compiled_ = std::make_shared<CompiledPipeline>(
        compilePipeline(spec, opts));
    exe.pool_ = std::make_shared<BufferPool>();
    // Off means *scalar*: suppress the JIT's autovectorisation flags
    // too.  Compare against the generated mode, which folds in the
    // POLYMAGE_VECTORIZE override.
    jit.vectorize =
        jit.vectorize && exe.compiled_->code.vectorizeMode != "off";
    {
        obs::ScopedTrace span(&reg, "jit");
        exe.module_ = std::make_shared<JitModule>(
            JitModule::compile(exe.compiled_->code.source, jit));
    }
    exe.fn_ = reinterpret_cast<PipelineFn>(
        exe.module_->symbol(exe.compiled_->code.entry));
    if (!exe.compiled_->code.instrEntry.empty()) {
        exe.instrFn_ = reinterpret_cast<InstrFn>(
            exe.module_->symbol(exe.compiled_->code.instrEntry));
    }
    if (!exe.compiled_->code.taskEntry.empty()) {
        exe.taskFn_ = reinterpret_cast<TaskFn>(
            exe.module_->symbol(exe.compiled_->code.taskEntry));
    }
    exe.trace_ = reg.spans();
    return exe;
}

std::vector<std::vector<std::int64_t>>
Executable::outputShapes(const std::vector<std::int64_t> &params) const
{
    const auto &g = compiled_->graph;
    std::vector<std::vector<std::int64_t>> shapes;
    for (int out : g.outputs())
        shapes.push_back(interp::stageShape(g.stage(out), g, params));
    return shapes;
}

std::vector<std::int64_t>
Executable::dispatchTileSizes(
    const std::vector<std::int64_t> &params) const
{
    const auto &code = compiled_->code;
    if (code.tileParamCount == 0)
        return {};
    // The largest output is the shape proxy the tile model refines
    // against; the generated code falls back to the compile-time sizes
    // for anything out of range, so this can only tune, not break.
    const auto &g = compiled_->graph;
    std::vector<std::int64_t> shape;
    std::int64_t best = -1;
    for (int out : g.outputs()) {
        auto s = interp::stageShape(g.stage(out), g, params);
        std::int64_t numel = 1;
        for (std::int64_t d : s)
            numel *= d;
        if (numel > best) {
            best = numel;
            shape = std::move(s);
        }
    }
    return core::tileSizesForShape(code.tileParamDefaults, shape);
}

namespace {

void
validateRun(const CompiledPipeline &c,
            const std::vector<std::int64_t> &params,
            const std::vector<const Buffer *> &inputs)
{
    const auto &g = c.graph;
    if (params.size() != g.params().size()) {
        specError("pipeline '", g.name(), "' expects ",
                  g.params().size(), " parameters, got ", params.size());
    }
    if (inputs.size() != g.images().size()) {
        specError("pipeline '", g.name(), "' expects ",
                  g.images().size(), " inputs, got ", inputs.size());
    }
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        PM_ASSERT(inputs[i] != nullptr, "null input buffer");
        const auto &img = *g.images()[i];
        if (inputs[i]->dims() != interp::imageShape(img, g, params)) {
            specError("input image '", img.name(),
                      "' has mismatched dimensions");
        }
        if (inputs[i]->dtype() != img.dtype()) {
            specError("input image '", img.name(),
                      "' has mismatched dtype");
        }
    }
}

/**
 * Per-call lease of the storage plan's allocation slots.  Each slot is
 * sized to its largest member stage under the actual parameter values
 * (compile-time estimates only guided the slot *assignment*; sizes are
 * always resolved at call time), acquired from the pool, and released
 * on scope exit even when the pipeline throws.
 */
class SlotLease
{
  public:
    SlotLease(const CompiledPipeline &c, BufferPool &pool,
              const std::vector<std::int64_t> &params)
        : pool_(pool)
    {
        const auto &g = c.graph;
        ptrs_.reserve(c.storage.slots.size());
        for (const auto &slot : c.storage.slots) {
            std::int64_t bytes = 0;
            for (int s : slot.stages) {
                const auto &stage = g.stage(s);
                std::int64_t numel = 1;
                for (std::int64_t d :
                     interp::stageShape(stage, g, params))
                    numel *= d;
                // Size with the plan's allocation type -- the narrowed
                // one when the range analysis proved it -- so the
                // bitwidth narrowing actually shrinks the lease.
                bytes = std::max(
                    bytes,
                    numel * std::int64_t(dsl::dtypeSize(
                                c.storage.elemType(s, g))));
            }
            ptrs_.push_back(pool_.acquire(std::size_t(bytes)));
        }
    }
    SlotLease(const SlotLease &) = delete;
    SlotLease &operator=(const SlotLease &) = delete;
    ~SlotLease()
    {
        for (void *p : ptrs_)
            pool_.release(p);
    }

    void *const *data() const { return ptrs_.data(); }

  private:
    BufferPool &pool_;
    std::vector<void *> ptrs_;
};

} // namespace

void
Executable::runInto(const std::vector<std::int64_t> &params,
                    const std::vector<const Buffer *> &inputs,
                    std::vector<Buffer> &outputs) const
{
    runInto(params, inputs, outputs, *pool_);
}

void
Executable::runInto(const std::vector<std::int64_t> &params,
                    const std::vector<const Buffer *> &inputs,
                    std::vector<Buffer> &outputs, BufferPool &pool) const
{
    validateRun(*compiled_, params, inputs);
    // Inputs are read-only in generated code; the ABI uses void* const*.
    std::vector<void *> in_ptrs;
    for (const Buffer *b : inputs)
        in_ptrs.push_back(const_cast<void *>(b->data()));
    std::vector<void *> out_ptrs;
    for (Buffer &b : outputs)
        out_ptrs.push_back(b.data());
    std::vector<long long> p(params.begin(), params.end());
    for (std::int64_t t : dispatchTileSizes(params))
        p.push_back((long long)t);
    SlotLease slots(*compiled_, pool, params);
    fn_(p.data(), in_ptrs.data(), out_ptrs.data(), slots.data());
}

std::vector<Buffer>
Executable::run(const std::vector<std::int64_t> &params,
                const std::vector<const Buffer *> &inputs) const
{
    return run(params, inputs, *pool_);
}

TaskInvocation::TaskInvocation(TaskInvocation &&o) noexcept
    : fn_(o.fn_), params_(std::move(o.params_)),
      ins_(std::move(o.ins_)), outs_(std::move(o.outs_)),
      slots_(std::move(o.slots_)), pool_(o.pool_)
{
    o.slots_.clear();
    o.pool_ = nullptr;
}

TaskInvocation::~TaskInvocation()
{
    if (pool_ != nullptr) {
        for (void *p : slots_)
            pool_->release(p);
    }
}

long long
TaskInvocation::phases() const
{
    return fn_(params_.data(), ins_.data(),
               const_cast<void **>(outs_.data()), slots_.data(), -1,
               -1, -1);
}

long long
TaskInvocation::taskCount(long long phase) const
{
    return fn_(params_.data(), ins_.data(),
               const_cast<void **>(outs_.data()), slots_.data(), phase,
               -1, -1);
}

std::vector<long long>
TaskInvocation::phaseCounts() const
{
    std::vector<long long> counts;
    const long long n = phases();
    counts.reserve(std::size_t(n));
    for (long long p = 0; p < n; ++p)
        counts.push_back(taskCount(p));
    return counts;
}

void
TaskInvocation::run(long long phase, long long lo, long long hi) const
{
    fn_(params_.data(), ins_.data(),
        const_cast<void **>(outs_.data()), slots_.data(), phase, lo,
        hi);
}

TaskInvocation
Executable::prepareTasks(const std::vector<std::int64_t> &params,
                         const std::vector<const Buffer *> &inputs,
                         std::vector<Buffer> &outputs,
                         BufferPool &pool) const
{
    PM_ASSERT(taskFn_ != nullptr,
              "pipeline built without codegen.taskABI");
    validateRun(*compiled_, params, inputs);
    TaskInvocation inv;
    inv.fn_ = taskFn_;
    inv.pool_ = &pool;
    for (const Buffer *b : inputs)
        inv.ins_.push_back(const_cast<void *>(b->data()));
    for (Buffer &b : outputs)
        inv.outs_.push_back(b.data());
    inv.params_.assign(params.begin(), params.end());
    for (std::int64_t t : dispatchTileSizes(params))
        inv.params_.push_back((long long)t);
    // Same sizing as SlotLease, but the lease must outlive this call
    // frame (the scheduler's workers execute later), so the
    // invocation owns the raw acquisitions directly.
    const auto &g = compiled_->graph;
    for (const auto &slot : compiled_->storage.slots) {
        std::int64_t bytes = 0;
        for (int s : slot.stages) {
            const auto &stage = g.stage(s);
            std::int64_t numel = 1;
            for (std::int64_t d : interp::stageShape(stage, g, params))
                numel *= d;
            bytes = std::max(
                bytes, numel * std::int64_t(dsl::dtypeSize(
                                   compiled_->storage.elemType(s, g))));
        }
        inv.slots_.push_back(pool.acquire(std::size_t(bytes)));
    }
    return inv;
}

std::vector<Buffer>
Executable::run(const std::vector<std::int64_t> &params,
                const std::vector<const Buffer *> &inputs,
                BufferPool &pool) const
{
    validateRun(*compiled_, params, inputs);
    std::vector<Buffer> outputs;
    const auto &g = compiled_->graph;
    for (int out : g.outputs()) {
        outputs.emplace_back(g.stage(out).callable->dtype(),
                             interp::stageShape(g.stage(out), g,
                                                params));
    }
    runInto(params, inputs, outputs, pool);
    return outputs;
}

TaskProfile
Executable::profile(const std::vector<std::int64_t> &params,
                    const std::vector<const Buffer *> &inputs) const
{
    PM_ASSERT(instrFn_ != nullptr,
              "pipeline built without codegen.instrument");
    validateRun(*compiled_, params, inputs);

    const auto &g = compiled_->graph;
    std::vector<Buffer> outputs;
    for (int out : g.outputs()) {
        outputs.emplace_back(g.stage(out).callable->dtype(),
                             interp::stageShape(g.stage(out), g,
                                                params));
    }
    std::vector<void *> in_ptrs;
    for (const Buffer *b : inputs)
        in_ptrs.push_back(const_cast<void *>(b->data()));
    std::vector<void *> out_ptrs;
    for (Buffer &b : outputs)
        out_ptrs.push_back(b.data());
    std::vector<long long> p(params.begin(), params.end());
    for (std::int64_t t : dispatchTileSizes(params))
        p.push_back((long long)t);

    SlotLease slots(*compiled_, *pool_, params);

    const long long cap = 1 << 22;
    TaskProfile prof;
    prof.costs.resize(cap);
    prof.phase.resize(cap);
    long long count = 0;
    instrFn_(p.data(), in_ptrs.data(), out_ptrs.data(), slots.data(),
             prof.costs.data(), prof.phase.data(), cap, &count,
             &prof.serialSeconds);
    if (count > cap) {
        warn("instrumented run produced more tasks than the capacity; "
             "profile truncated");
        count = cap;
    }
    prof.costs.resize(count);
    prof.phase.resize(count);

    // The serial instrumented run is deterministic, so repeat it and
    // keep the per-task minimum: OS preemption spikes on a shared core
    // would otherwise masquerade as giant tasks and wreck the LPT
    // makespan.  Short pipelines get more repeats -- a sub-millisecond
    // run needs several samples before the minima stop moving -- until
    // ~30ms of measurement accumulates (capped at 9 total runs).
    double first_total = prof.serialSeconds;
    for (long long i = 0; i < count; ++i)
        first_total += prof.costs[std::size_t(i)];
    const int reps =
        first_total >= 0.015
            ? 3
            : std::min(9, 3 + int(0.03 / std::max(first_total, 1e-5)));
    for (int rep = 1; rep < reps; ++rep) {
        std::vector<double> costs(static_cast<std::size_t>(count), 0.0);
        std::vector<long long> phase(static_cast<std::size_t>(count), 0);
        long long n2 = 0;
        double serial2 = 0;
        instrFn_(p.data(), in_ptrs.data(), out_ptrs.data(),
                 slots.data(), costs.data(), phase.data(), count, &n2,
                 &serial2);
        if (n2 != count)
            break; // unexpected; keep the first profile
        for (long long i = 0; i < count; ++i) {
            prof.costs[std::size_t(i)] = std::min(
                prof.costs[std::size_t(i)], costs[std::size_t(i)]);
        }
        prof.serialSeconds = std::min(prof.serialSeconds, serial2);
    }

    // Fold the flat task stream into the per-group rollup using the
    // codegen's phase->group map.  Every group gets an entry, in
    // emission order, even when it recorded no tasks (serial groups).
    const auto &phase_group = compiled_->code.phaseGroup;
    prof.groups.resize(compiled_->grouping.groups.size());
    for (std::size_t gi = 0; gi < prof.groups.size(); ++gi) {
        prof.groups[gi].group = int(gi);
        std::string names;
        for (int s : compiled_->grouping.groups[gi].stages) {
            if (!names.empty())
                names += ' ';
            names += g.stage(s).name();
        }
        prof.groups[gi].stages = std::move(names);
    }
    for (std::size_t i = 0; i < prof.costs.size(); ++i) {
        const long long ph = prof.phase[i];
        if (ph < 0 || ph >= (long long)phase_group.size())
            continue; // foreign phase id; leave unattributed
        const int gi = phase_group[std::size_t(ph)];
        prof.groups[std::size_t(gi)].seconds += prof.costs[i];
        prof.groups[std::size_t(gi)].tasks += 1;
    }
    return prof;
}

MemoryStats
Executable::memoryStats() const
{
    MemoryStats m;
    const auto &st = compiled_->storage;
    m.intermediates = int(st.slot.size());
    m.slots = int(st.slots.size());
    m.estBytesNoReuse = st.estBytesNoReuse;
    m.estBytesWithReuse = st.estBytesWithReuse;
    for (const auto &[s, ss] : st.stages) {
        if (ss.kind == core::StorageKind::Scratchpad) {
            ++m.scratchStages;
            m.scratchBytesPerTile += ss.scratchBytes;
        }
    }
    m.heapArenaBytes = compiled_->code.heapArenaBytes;
    const BufferPool::Stats ps = pool_->stats();
    m.poolBytesAllocated = ps.bytesOwned;
    m.poolPeakBytesInUse = ps.peakBytesInUse;
    m.poolBlockAllocs = ps.blockAllocs;
    m.poolAcquires = ps.acquires;
    return m;
}

std::string
MemoryStats::toJson() const
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("schema").value("polymage-memory-v1");
    w.key("intermediates").value(intermediates);
    w.key("slots").value(slots);
    w.key("est_bytes_no_reuse").value(estBytesNoReuse);
    w.key("est_bytes_with_reuse").value(estBytesWithReuse);
    w.key("est_bytes_saved").value(estBytesSaved());
    w.key("scratch_stages").value(scratchStages);
    w.key("scratch_bytes_per_tile").value(scratchBytesPerTile);
    w.key("heap_arena_bytes").value(heapArenaBytes);
    w.key("pool_bytes_allocated").value(poolBytesAllocated);
    w.key("pool_peak_bytes_in_use").value(poolPeakBytesInUse);
    w.key("pool_block_allocs").value(std::int64_t(poolBlockAllocs));
    w.key("pool_acquires").value(std::int64_t(poolAcquires));
    w.key("ring_buffers").value(ringBuffers);
    w.key("ring_bytes").value(ringBytes);
    w.endObject();
    return w.str();
}

std::string
TaskProfile::toJson() const
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("schema").value("polymage-runtime-v1");
    // serial_seconds only accumulates for pipelines with serial
    // stages; omit the field entirely instead of reporting a
    // misleading 0 for fully parallel pipelines.
    if (serialSeconds > 0.0)
        w.key("serial_seconds").value(serialSeconds);
    w.key("total_seconds").value(totalSeconds());
    w.key("tasks").value(std::int64_t(costs.size()));
    w.key("groups").beginArray();
    for (const auto &gp : groups) {
        w.beginObject();
        w.key("group").value(gp.group);
        w.key("stages").value(gp.stages);
        w.key("seconds").value(gp.seconds);
        w.key("tasks").value(std::int64_t(gp.tasks));
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace polymage::rt
