#include "runtime/synth.hpp"

#include <cmath>

#include "support/rng.hpp"

namespace polymage::rt::synth {

namespace {

/** Smooth pseudo-photo intensity in [0, 1). */
double
photoValue(std::int64_t i, std::int64_t j, std::int64_t rows,
           std::int64_t cols, Rng &rng)
{
    const double u = double(i) / double(rows);
    const double v = double(j) / double(cols);
    double val = 0.35 + 0.25 * u + 0.15 * v;
    val += 0.12 * std::sin(u * 21.0 + 2.0 * v) *
           std::cos(v * 17.0 - u * 3.0);
    val += 0.05 * std::sin(u * 113.0) * std::sin(v * 127.0);
    val += 0.02 * (rng.uniform01() - 0.5);
    if (val < 0.0)
        val = 0.0;
    if (val >= 1.0)
        val = 0.999;
    return val;
}

} // namespace

Buffer
photo(std::int64_t rows, std::int64_t cols, std::uint64_t seed)
{
    Buffer b(dsl::DType::Float, {rows, cols});
    Rng rng(seed);
    float *p = b.dataAs<float>();
    for (std::int64_t i = 0; i < rows; ++i) {
        for (std::int64_t j = 0; j < cols; ++j)
            p[i * cols + j] = float(photoValue(i, j, rows, cols, rng));
    }
    return b;
}

Buffer
photoRgb(std::int64_t rows, std::int64_t cols, std::uint64_t seed)
{
    Buffer b(dsl::DType::Float, {3, rows, cols});
    float *p = b.dataAs<float>();
    for (int c = 0; c < 3; ++c) {
        Rng rng(seed + std::uint64_t(c) * 977);
        for (std::int64_t i = 0; i < rows; ++i) {
            for (std::int64_t j = 0; j < cols; ++j) {
                p[(c * rows + i) * cols + j] =
                    float(photoValue(i, j, rows, cols, rng));
            }
        }
    }
    return b;
}

Buffer
photoU8(std::int64_t rows, std::int64_t cols, std::uint64_t seed)
{
    Buffer b(dsl::DType::UChar, {rows, cols});
    Rng rng(seed);
    unsigned char *p = b.dataAs<unsigned char>();
    for (std::int64_t i = 0; i < rows; ++i) {
        for (std::int64_t j = 0; j < cols; ++j) {
            p[i * cols + j] = static_cast<unsigned char>(
                photoValue(i, j, rows, cols, rng) * 256.0);
        }
    }
    return b;
}

Buffer
bayerRaw(std::int64_t rows, std::int64_t cols, std::uint64_t seed)
{
    Buffer b(dsl::DType::UShort, {rows, cols});
    Rng rng(seed);
    unsigned short *p = b.dataAs<unsigned short>();
    for (std::int64_t i = 0; i < rows; ++i) {
        for (std::int64_t j = 0; j < cols; ++j) {
            const double v = photoValue(i, j, rows, cols, rng);
            // GRBG mosaic: scale per colour site to mimic channel
            // sensitivities.
            double gain = 1.0;
            const bool odd_row = (i & 1) != 0;
            const bool odd_col = (j & 1) != 0;
            if (!odd_row && odd_col)
                gain = 0.8; // red site
            else if (odd_row && !odd_col)
                gain = 0.7; // blue site
            p[i * cols + j] =
                static_cast<unsigned short>(v * gain * 1023.0);
        }
    }
    return b;
}

Buffer
blendMask(std::int64_t rows, std::int64_t cols)
{
    Buffer b(dsl::DType::Float, {rows, cols});
    float *p = b.dataAs<float>();
    const double mid = double(cols) / 2.0;
    const double soft = double(cols) / 16.0 + 1.0;
    for (std::int64_t i = 0; i < rows; ++i) {
        for (std::int64_t j = 0; j < cols; ++j) {
            const double t = (double(j) - mid) / soft;
            p[i * cols + j] = float(1.0 / (1.0 + std::exp(t)));
        }
    }
    return b;
}

Buffer
sparseAlpha(std::int64_t rows, std::int64_t cols, double density,
            std::uint64_t seed)
{
    Buffer b(dsl::DType::Float, {2, rows, cols});
    Rng rng(seed);
    float *p = b.dataAs<float>();
    for (std::int64_t i = 0; i < rows; ++i) {
        for (std::int64_t j = 0; j < cols; ++j) {
            const bool sample = rng.chance(density);
            const double v = photoValue(i, j, rows, cols, rng);
            // Channel 0: alpha-premultiplied value; channel 1: alpha.
            p[(0 * rows + i) * cols + j] = sample ? float(v) : 0.0f;
            p[(1 * rows + i) * cols + j] = sample ? 1.0f : 0.0f;
        }
    }
    return b;
}

} // namespace polymage::rt::synth
