#include "runtime/scaling.hpp"

#include <algorithm>
#include <map>
#include <queue>

#include "support/diagnostics.hpp"

namespace polymage::rt {

double
lptMakespan(const std::vector<double> &costs, int workers)
{
    PM_ASSERT(workers >= 1, "worker count must be positive");
    if (costs.empty())
        return 0.0;
    if (workers == 1) {
        double total = 0;
        for (double c : costs)
            total += c;
        return total;
    }
    std::vector<double> sorted = costs;
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    // Min-heap of worker loads.
    std::priority_queue<double, std::vector<double>, std::greater<>>
        loads;
    for (int i = 0; i < workers; ++i)
        loads.push(0.0);
    for (double c : sorted) {
        double least = loads.top();
        loads.pop();
        loads.push(least + c);
    }
    double makespan = 0;
    while (!loads.empty()) {
        makespan = std::max(makespan, loads.top());
        loads.pop();
    }
    return makespan;
}

double
predictTime(const TaskProfile &profile, int workers)
{
    std::map<long long, std::vector<double>> phases;
    for (std::size_t i = 0; i < profile.costs.size(); ++i)
        phases[profile.phase[i]].push_back(profile.costs[i]);
    double t = profile.serialSeconds;
    for (const auto &[phase, costs] : phases) {
        (void)phase;
        t += lptMakespan(costs, workers);
    }
    return t;
}

std::vector<double>
predictSpeedups(const TaskProfile &profile,
                const std::vector<int> &workers)
{
    const double base = predictTime(profile, 1);
    std::vector<double> out;
    for (int w : workers)
        out.push_back(base / predictTime(profile, w));
    return out;
}

} // namespace polymage::rt
