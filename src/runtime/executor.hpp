/**
 * @file
 * High-level execution of compiled pipelines: ties the compiler driver
 * and JIT together, allocates output buffers, and exposes the
 * instrumented profile used by the multicore scaling model.
 */
#ifndef POLYMAGE_RUNTIME_EXECUTOR_HPP
#define POLYMAGE_RUNTIME_EXECUTOR_HPP

#include <cstdint>
#include <vector>

#include "driver/compiler.hpp"
#include "runtime/buffer.hpp"
#include "runtime/jit.hpp"

namespace polymage::rt {

/** ABI of generated pipeline entry points. */
using PipelineFn = void (*)(const long long *, void *const *, void **);
/** ABI of instrumented entry points. */
using InstrFn = void (*)(const long long *, void *const *, void **,
                         double *, long long *, long long, long long *,
                         double *);

/** Aggregated runtime cost of one group from an instrumented run. */
struct GroupProfile
{
    /** Group index (matches CompiledPipeline::grouping.groups). */
    int group = 0;
    /** Space-separated member stage names (post-inlining). */
    std::string stages;
    /** Seconds summed over the group's recorded tasks. */
    double seconds = 0.0;
    /**
     * Number of recorded parallel tasks: outer tile count for a tiled
     * group, outer loop iteration count otherwise; 0 for purely
     * serial groups (recurrences), whose time lands in
     * TaskProfile::serialSeconds.
     */
    long long tasks = 0;
};

/** Per-task timing profile from an instrumented run. */
struct TaskProfile
{
    /** Seconds per parallel task. */
    std::vector<double> costs;
    /** Parallel phase (barrier region) of each task. */
    std::vector<long long> phase;
    /** Seconds spent in inherently serial stages. */
    double serialSeconds = 0.0;
    /** Per-group rollup, one entry per group in emission order. */
    std::vector<GroupProfile> groups;

    double
    totalSeconds() const
    {
        double t = serialSeconds;
        for (double c : costs)
            t += c;
        return t;
    }

    /** Runtime profile serialized to the polymage-profile-v1 group
     * schema (see docs/OBSERVABILITY.md). */
    std::string toJson() const;
};

/** A compiled, loaded, runnable pipeline. */
class Executable
{
  public:
    /**
     * Compile a specification end to end.  The JIT vectorisation flag
     * follows opts.codegen.vectorize unless overridden via @p jit.
     */
    static Executable build(const dsl::PipelineSpec &spec,
                            const CompileOptions &opts =
                                CompileOptions::optimized(),
                            JitOptions jit = {});

    /** Compiler artefacts (graph, grouping, storage, source). */
    const CompiledPipeline &info() const { return *compiled_; }

    /**
     * Compile-phase spans including the JIT: the driver phases from
     * CompiledPipeline::trace plus a final `jit` span.
     */
    const std::vector<obs::Span> &trace() const { return trace_; }

    /** Allocate outputs and run. */
    std::vector<Buffer> run(const std::vector<std::int64_t> &params,
                            const std::vector<const Buffer *> &inputs)
        const;

    /** Run into caller-provided outputs. */
    void runInto(const std::vector<std::int64_t> &params,
                 const std::vector<const Buffer *> &inputs,
                 std::vector<Buffer> &outputs) const;

    /**
     * Run the instrumented entry (serial) and collect per-task costs.
     * Requires opts.codegen.instrument at build time.
     */
    TaskProfile profile(const std::vector<std::int64_t> &params,
                        const std::vector<const Buffer *> &inputs) const;

    /** Shapes of the output buffers under the given parameters. */
    std::vector<std::vector<std::int64_t>>
    outputShapes(const std::vector<std::int64_t> &params) const;

  private:
    Executable() = default;

    std::shared_ptr<const CompiledPipeline> compiled_;
    std::shared_ptr<JitModule> module_;
    std::vector<obs::Span> trace_;
    PipelineFn fn_ = nullptr;
    InstrFn instrFn_ = nullptr;
};

} // namespace polymage::rt

#endif // POLYMAGE_RUNTIME_EXECUTOR_HPP
