/**
 * @file
 * High-level execution of compiled pipelines: ties the compiler driver
 * and JIT together, allocates output buffers, and exposes the
 * instrumented profile used by the multicore scaling model.
 */
#ifndef POLYMAGE_RUNTIME_EXECUTOR_HPP
#define POLYMAGE_RUNTIME_EXECUTOR_HPP

#include <cstdint>
#include <vector>

#include "driver/compiler.hpp"
#include "runtime/buffer.hpp"
#include "runtime/jit.hpp"

namespace polymage::rt {

/**
 * ABI of generated pipeline entry points.  The trailing pointer array
 * carries the intermediate-buffer slots of the storage reuse plan
 * (StoragePlan::slots), 64-byte aligned, serviced by the Executable's
 * BufferPool.
 */
using PipelineFn = void (*)(const long long *, void *const *, void **,
                            void *const *);
/** ABI of instrumented entry points. */
using InstrFn = void (*)(const long long *, void *const *, void **,
                         void *const *, double *, long long *,
                         long long, long long *, double *);
/**
 * ABI of task-granular entry points (GeneratedCode::taskEntry): the
 * trailing (phase, lo, hi) triple selects what runs.  phase < 0
 * returns the phase count; lo < 0 returns the task count of `phase`
 * under the call's parameters; otherwise tasks [lo, min(hi, count-1)]
 * of `phase` execute serially in the calling thread and 0 is
 * returned.
 */
using TaskFn = long long (*)(const long long *, void *const *, void **,
                             void *const *, long long, long long,
                             long long);

/** Aggregated runtime cost of one group from an instrumented run. */
struct GroupProfile
{
    /** Group index (matches CompiledPipeline::grouping.groups). */
    int group = 0;
    /** Space-separated member stage names (post-inlining). */
    std::string stages;
    /** Seconds summed over the group's recorded tasks. */
    double seconds = 0.0;
    /**
     * Number of recorded parallel tasks: outer tile count for a tiled
     * group, outer loop iteration count otherwise; 0 for purely
     * serial groups (recurrences), whose time lands in
     * TaskProfile::serialSeconds.
     */
    long long tasks = 0;
};

/** Per-task timing profile from an instrumented run. */
struct TaskProfile
{
    /** Seconds per parallel task. */
    std::vector<double> costs;
    /** Parallel phase (barrier region) of each task. */
    std::vector<long long> phase;
    /** Seconds spent in inherently serial stages. */
    double serialSeconds = 0.0;
    /** Per-group rollup, one entry per group in emission order. */
    std::vector<GroupProfile> groups;

    double
    totalSeconds() const
    {
        double t = serialSeconds;
        for (double c : costs)
            t += c;
        return t;
    }

    /** Runtime profile serialized to the polymage-profile-v1 group
     * schema (see docs/OBSERVABILITY.md). */
    std::string toJson() const;
};

/**
 * Memory-system statistics of one Executable: the storage planner's
 * reuse-plan estimates plus the live counters of the backing
 * BufferPool.  Serialized into the `memory` object of
 * polymage-profile-v1 entries (docs/OBSERVABILITY.md).
 */
struct MemoryStats
{
    /** Full-buffer intermediates and the slots they share. */
    int intermediates = 0;
    int slots = 0;
    /** Estimated intermediate bytes without / with slot sharing. */
    std::int64_t estBytesNoReuse = 0;
    std::int64_t estBytesWithReuse = 0;
    std::int64_t estBytesSaved() const
    {
        return estBytesNoReuse - estBytesWithReuse;
    }
    /**
     * Scratchpad storage (paper §3.6).  A fully-fused pipeline can
     * have zero full-buffer intermediates while still carrying every
     * intermediate stage in per-tile scratchpads -- all-zero
     * `intermediates`/`slots` alone would misread as "no intermediate
     * storage at all", so the scratch side is reported explicitly.
     */
    int scratchStages = 0;
    /** Per-tile scratch bytes summed over all scratchpad stages. */
    std::int64_t scratchBytesPerTile = 0;
    /** Largest per-thread heap scratch arena (0: all scratch on stack). */
    std::int64_t heapArenaBytes = 0;
    /** Pool footprint: bytes of every block ever retained (peak). */
    std::int64_t poolBytesAllocated = 0;
    /** High-water mark of bytes simultaneously in use. */
    std::int64_t poolPeakBytesInUse = 0;
    /** Real heap allocations vs. total slot acquisitions; equal counts
     * mean every call allocated, a plateau means steady-state reuse. */
    std::uint64_t poolBlockAllocs = 0;
    std::uint64_t poolAcquires = 0;
    /** Streaming sessions only (docs/STREAMING.md): persistent ring
     * slots held across frames, and their total bytes. */
    int ringBuffers = 0;
    std::int64_t ringBytes = 0;

    /** Serialized to the polymage-memory-v1 schema. */
    std::string toJson() const;
};

/**
 * One prepared task-granular call (docs/SERVING.md "Scheduling"):
 * the resolved parameter array (graph parameters plus dispatch tile
 * sizes), input/output pointer tables, and a held slot lease, bound
 * so a caller-owned scheduler can execute the pipeline's phases as
 * closed task lists.  The lease returns to its pool on destruction;
 * the invocation must not outlive the Executable, the inputs, or the
 * output buffers it was prepared against.
 */
class TaskInvocation
{
  public:
    TaskInvocation(TaskInvocation &&o) noexcept;
    TaskInvocation &operator=(TaskInvocation &&) = delete;
    TaskInvocation(const TaskInvocation &) = delete;
    TaskInvocation &operator=(const TaskInvocation &) = delete;
    ~TaskInvocation();

    /** Parallel phases of the pipeline (== phaseGroup.size()). */
    long long phases() const;
    /** Tasks of @p phase under this call's parameters. */
    long long taskCount(long long phase) const;
    /** All per-phase task counts, phase order. */
    std::vector<long long> phaseCounts() const;
    /**
     * Execute tasks [lo, hi] of @p phase serially in the calling
     * thread.  Tasks of one phase are independent and may run
     * concurrently from many threads; phases must complete in order.
     */
    void run(long long phase, long long lo, long long hi) const;

  private:
    friend class Executable;
    TaskInvocation() = default;

    TaskFn fn_ = nullptr;
    std::vector<long long> params_;
    std::vector<void *> ins_;
    std::vector<void *> outs_;
    std::vector<void *> slots_;
    BufferPool *pool_ = nullptr;
};

/** A compiled, loaded, runnable pipeline. */
class Executable
{
  public:
    /**
     * Compile a specification end to end.  The JIT vectorisation flag
     * follows opts.codegen.vectorize unless overridden via @p jit.
     */
    static Executable build(const dsl::PipelineSpec &spec,
                            const CompileOptions &opts =
                                CompileOptions::optimized(),
                            JitOptions jit = {});

    /** Compiler artefacts (graph, grouping, storage, source). */
    const CompiledPipeline &info() const { return *compiled_; }

    /**
     * Compile-phase spans including the JIT: the driver phases from
     * CompiledPipeline::trace plus a final `jit` span.
     */
    const std::vector<obs::Span> &trace() const { return trace_; }

    /**
     * Allocate outputs and run.
     *
     * Thread-safe: concurrent run()/runInto() calls on one Executable
     * are supported — the compiled artefacts are immutable, slot
     * leases are per call, and the backing BufferPool is internally
     * locked (it grows to the concurrent working-set peak).
     */
    std::vector<Buffer> run(const std::vector<std::int64_t> &params,
                            const std::vector<const Buffer *> &inputs)
        const;

    /** Run into caller-provided outputs. */
    void runInto(const std::vector<std::int64_t> &params,
                 const std::vector<const Buffer *> &inputs,
                 std::vector<Buffer> &outputs) const;

    /**
     * Allocate outputs and run, servicing intermediate slots from
     * @p pool instead of the Executable's own.  Lets callers with many
     * concurrent invocations (the serving engine's workers) keep one
     * warm pool per thread so steady state stays allocation- and
     * contention-free.
     */
    std::vector<Buffer> run(const std::vector<std::int64_t> &params,
                            const std::vector<const Buffer *> &inputs,
                            BufferPool &pool) const;

    /** Run into caller-provided outputs using an external pool. */
    void runInto(const std::vector<std::int64_t> &params,
                 const std::vector<const Buffer *> &inputs,
                 std::vector<Buffer> &outputs, BufferPool &pool) const;

    /** True when the build carried CodegenOptions::taskABI and the
     * task-granular entry resolved. */
    bool hasTaskEntry() const { return taskFn_ != nullptr; }

    /**
     * Prepare a task-granular call against caller-allocated
     * @p outputs: validates the request, binds parameters (plus
     * dispatch tile sizes) and pointer tables, and leases the
     * intermediate slots from @p pool.  The returned invocation's
     * run(phase, lo, hi) is what a tile scheduler's workers execute;
     * the caller must keep inputs/outputs alive until it is done and
     * destroyed.  Requires hasTaskEntry().
     */
    TaskInvocation prepareTasks(const std::vector<std::int64_t> &params,
                                const std::vector<const Buffer *> &inputs,
                                std::vector<Buffer> &outputs,
                                BufferPool &pool) const;

    /**
     * Run the instrumented entry (serial) and collect per-task costs.
     * Requires opts.codegen.instrument at build time.
     */
    TaskProfile profile(const std::vector<std::int64_t> &params,
                        const std::vector<const Buffer *> &inputs) const;

    /** Shapes of the output buffers under the given parameters. */
    std::vector<std::vector<std::int64_t>>
    outputShapes(const std::vector<std::int64_t> &params) const;

    /**
     * Tile sizes this executable binds for a call at @p params: empty
     * for shape-specialized builds (sizes are folded constants);
     * otherwise the compile-time sizes refined per shape by
     * core::tileSizesForShape and passed as the trailing entries of
     * the generated entry's params array (docs/SHAPES.md).
     */
    std::vector<std::int64_t>
    dispatchTileSizes(const std::vector<std::int64_t> &params) const;

    /**
     * Memory-system statistics: the storage reuse plan plus live
     * counters from the pool backing the intermediate slots.
     */
    MemoryStats memoryStats() const;

    /** The pool servicing this pipeline's intermediate slots. */
    BufferPool &pool() const { return *pool_; }

  private:
    Executable() = default;

    std::shared_ptr<const CompiledPipeline> compiled_;
    std::shared_ptr<JitModule> module_;
    std::shared_ptr<BufferPool> pool_;
    std::vector<obs::Span> trace_;
    PipelineFn fn_ = nullptr;
    InstrFn instrFn_ = nullptr;
    TaskFn taskFn_ = nullptr;
};

} // namespace polymage::rt

#endif // POLYMAGE_RUNTIME_EXECUTOR_HPP
