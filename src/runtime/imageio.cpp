#include "runtime/imageio.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <vector>

namespace polymage::rt {

namespace {

unsigned char
quantise(const Buffer &img, std::int64_t flat)
{
    const double v = img.loadAsDouble(flat);
    if (dsl::dtypeIsFloat(img.dtype())) {
        const double s = std::clamp(v, 0.0, 1.0) * 255.0;
        return static_cast<unsigned char>(std::lround(s));
    }
    return static_cast<unsigned char>(
        std::clamp<std::int64_t>(std::int64_t(v), 0, 255));
}

int
readToken(std::istream &in)
{
    // Skip whitespace and comments per the netpbm grammar.
    while (true) {
        int c = in.peek();
        if (c == '#') {
            std::string line;
            std::getline(in, line);
        } else if (std::isspace(c)) {
            in.get();
        } else {
            break;
        }
    }
    int value = 0;
    in >> value;
    return value;
}

} // namespace

void
writeImage(const Buffer &img, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        specError("cannot open '", path, "' for writing");

    if (img.rank() == 2) {
        const std::int64_t rows = img.dims()[0], cols = img.dims()[1];
        out << "P5\n" << cols << " " << rows << "\n255\n";
        for (std::int64_t i = 0; i < rows * cols; ++i)
            out.put(char(quantise(img, i)));
    } else if (img.rank() == 3 && img.dims()[0] == 3) {
        const std::int64_t rows = img.dims()[1], cols = img.dims()[2];
        out << "P6\n" << cols << " " << rows << "\n255\n";
        const std::int64_t plane = rows * cols;
        for (std::int64_t i = 0; i < plane; ++i) {
            for (int c = 0; c < 3; ++c)
                out.put(char(quantise(img, c * plane + i)));
        }
    } else {
        specError("writeImage supports rank-2 or 3x(rank-2) buffers");
    }
    if (!out)
        specError("failed writing image to '", path, "'");
}

Buffer
readImage(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        specError("cannot open '", path, "' for reading");
    std::string magic;
    in >> magic;
    if (magic != "P5" && magic != "P6")
        specError("'", path, "' is not a binary PGM/PPM file");
    const int cols = readToken(in);
    const int rows = readToken(in);
    const int maxval = readToken(in);
    if (cols <= 0 || rows <= 0 || maxval != 255)
        specError("unsupported PNM header in '", path, "'");
    in.get(); // single whitespace before raster

    if (magic == "P5") {
        Buffer img(dsl::DType::UChar, {rows, cols});
        in.read(reinterpret_cast<char *>(img.data()),
                std::streamsize(rows) * cols);
        if (!in)
            specError("truncated PGM raster in '", path, "'");
        return img;
    }
    Buffer img(dsl::DType::UChar, {3, rows, cols});
    unsigned char *p = img.dataAs<unsigned char>();
    const std::int64_t plane = std::int64_t(rows) * cols;
    std::vector<unsigned char> row(std::size_t(cols) * 3);
    for (std::int64_t i = 0; i < rows; ++i) {
        in.read(reinterpret_cast<char *>(row.data()),
                std::streamsize(row.size()));
        if (!in)
            specError("truncated PPM raster in '", path, "'");
        for (std::int64_t j = 0; j < cols; ++j) {
            for (int c = 0; c < 3; ++c)
                p[c * plane + i * cols + j] =
                    row[std::size_t(j) * 3 + std::size_t(c)];
        }
    }
    return img;
}

Buffer
toFloat(const Buffer &img)
{
    PM_ASSERT(img.dtype() == dsl::DType::UChar, "expected UChar image");
    Buffer out(dsl::DType::Float, img.dims());
    for (std::int64_t i = 0; i < img.numel(); ++i)
        out.storeFromDouble(i, img.loadAsDouble(i) / 256.0);
    return out;
}

} // namespace polymage::rt
