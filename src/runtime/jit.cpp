#include "runtime/jit.hpp"

#include <cstdlib>
#include <dlfcn.h>
#include <fstream>
#include <sstream>
#include <sys/stat.h>
#include <unistd.h>

#include "support/diagnostics.hpp"

namespace polymage::rt {

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
removeTree(const std::string &dir)
{
    // The directory contains only files we created; a shell-out keeps
    // this dependency-free.
    std::string cmd = "rm -rf '" + dir + "'";
    if (std::system(cmd.c_str()) != 0)
        warn("failed to remove JIT temp dir " + dir);
}

} // namespace

JitModule
JitModule::compile(const std::string &source, const JitOptions &opts)
{
    char tmpl[] = "/tmp/polymage_jit_XXXXXX";
    const char *dir = mkdtemp(tmpl);
    if (dir == nullptr)
        internalError("mkdtemp failed for JIT compilation");

    JitModule mod;
    mod.dir_ = dir;
    mod.keep_ = opts.keepFiles;
    mod.sourcePath_ = mod.dir_ + "/pipeline.cpp";
    const std::string so_path = mod.dir_ + "/pipeline.so";
    const std::string err_path = mod.dir_ + "/compile.log";

    {
        std::ofstream out(mod.sourcePath_);
        out << source;
        if (!out)
            internalError("cannot write JIT source to ",
                          mod.sourcePath_);
    }

    std::ostringstream cmd;
    // -fno-math-errno lets gcc vectorise transcendental calls (expf,
    // powf) under omp simd via libmvec, matching what icc does by
    // default in the paper's setup.  It is not -ffast-math: IEEE
    // semantics are otherwise preserved.
    cmd << opts.compiler << " -shared -fPIC -std=c++17 -w "
        << "-fno-math-errno " << opts.optLevel;
    if (opts.nativeArch)
        cmd << " -march=native";
    if (opts.openmp)
        cmd << " -fopenmp";
    if (!opts.vectorize)
        cmd << " -fno-tree-vectorize -fno-tree-slp-vectorize";
    if (!opts.extraFlags.empty())
        cmd << " " << opts.extraFlags;
    cmd << " '" << mod.sourcePath_ << "' -o '" << so_path << "' 2> '"
        << err_path << "'";

    if (std::system(cmd.str().c_str()) != 0) {
        const std::string log = readFile(err_path);
        mod.keep_ = true; // preserve evidence
        internalError("JIT compilation failed (sources kept in ",
                      mod.dir_, "):\n", cmd.str(), "\n", log);
    }

    mod.handle_ = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (mod.handle_ == nullptr) {
        mod.keep_ = true;
        internalError("dlopen failed: ", dlerror());
    }
    return mod;
}

JitModule::JitModule(JitModule &&o) noexcept
    : handle_(o.handle_), dir_(std::move(o.dir_)),
      sourcePath_(std::move(o.sourcePath_)), keep_(o.keep_)
{
    o.handle_ = nullptr;
    o.dir_.clear();
}

JitModule &
JitModule::operator=(JitModule &&o) noexcept
{
    if (this != &o) {
        this->~JitModule();
        new (this) JitModule(std::move(o));
    }
    return *this;
}

JitModule::~JitModule()
{
    if (handle_ != nullptr)
        dlclose(handle_);
    if (!dir_.empty() && !keep_)
        removeTree(dir_);
}

void *
JitModule::symbol(const std::string &name) const
{
    PM_ASSERT(handle_ != nullptr, "module not loaded");
    void *sym = dlsym(handle_, name.c_str());
    if (sym == nullptr)
        internalError("symbol '", name, "' not found in JIT module");
    return sym;
}

} // namespace polymage::rt
