#include "runtime/jit.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <dlfcn.h>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <sys/stat.h>
#include <unistd.h>
#include <unordered_map>

#include "support/diagnostics.hpp"

namespace polymage::rt {

namespace fs = std::filesystem;

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
removeTree(const std::string &dir)
{
    std::error_code ec;
    fs::remove_all(dir, ec);
    if (ec)
        warn("failed to remove JIT temp dir " + dir + ": " +
             ec.message());
}

/** 64-bit FNV-1a; collision-tolerant enough for a content cache. */
std::uint64_t
fnv1a(const std::string &data, std::uint64_t h = 14695981039346656037ULL)
{
    for (unsigned char c : data) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

/**
 * First line of `compiler --version`, memoised per compiler name so a
 * cache hit costs one subprocess per process lifetime, not per build.
 * Empty when the probe fails (the cache key then degrades gracefully
 * to source+flags).
 */
std::string
compilerVersion(const std::string &compiler)
{
    static std::mutex mu;
    static std::unordered_map<std::string, std::string> memo;
    std::lock_guard<std::mutex> lock(mu);
    auto it = memo.find(compiler);
    if (it != memo.end())
        return it->second;

    std::string line;
    const std::string cmd = compiler + " --version 2>/dev/null";
    if (FILE *p = popen(cmd.c_str(), "r")) {
        char buf[256];
        if (std::fgets(buf, sizeof buf, p) != nullptr)
            line = buf;
        pclose(p);
    }
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
        line.pop_back();
    memo[compiler] = line;
    return line;
}

/**
 * Persistent cache directory: POLYMAGE_JIT_CACHE_DIR, else
 * $XDG_CACHE_HOME/polymage/jit, else $HOME/.cache/polymage/jit, else a
 * world-shared /tmp fallback.  Created on demand; empty on failure
 * (caching is then skipped).
 */
std::string
cacheDir()
{
    std::string dir;
    if (const char *e = std::getenv("POLYMAGE_JIT_CACHE_DIR");
        e != nullptr && e[0] != '\0') {
        dir = e;
    } else if (const char *xdg = std::getenv("XDG_CACHE_HOME");
               xdg != nullptr && xdg[0] != '\0') {
        dir = std::string(xdg) + "/polymage/jit";
    } else if (const char *home = std::getenv("HOME");
               home != nullptr && home[0] != '\0') {
        dir = std::string(home) + "/.cache/polymage/jit";
    } else {
        dir = "/tmp/polymage-jit-cache";
    }
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        return {};
    return dir;
}

/**
 * Atomically publish @p src as @p dst within the cache: copy to a
 * unique temp name in the same directory, then rename.  Safe under
 * concurrent writers — the temp name is unique per process *and*
 * per call (pid alone would collide for two threads of one process),
 * and rename() replaces any concurrent winner atomically, so readers
 * only ever see a complete file.  Best effort — a failure only loses
 * the cache entry, never the build.
 */
void
publishToCache(const std::string &src, const std::string &dst)
{
    static std::atomic<std::uint64_t> seq{0};
    const std::string tmp = dst + ".tmp." +
                            std::to_string(::getpid()) + "." +
                            std::to_string(seq.fetch_add(1));
    std::error_code ec;
    fs::copy_file(src, tmp, fs::copy_options::overwrite_existing, ec);
    if (ec)
        return;
    fs::rename(tmp, dst, ec);
    if (ec)
        fs::remove(tmp, ec);
}

} // namespace

JitModule
JitModule::compile(const std::string &source, const JitOptions &opts)
{
    std::ostringstream flags;
    // -fno-math-errno lets gcc vectorise transcendental calls (expf,
    // powf) under omp simd via libmvec, matching what icc does by
    // default in the paper's setup.  It is not -ffast-math: IEEE
    // semantics are otherwise preserved.
    flags << "-shared -fPIC -std=c++17 -w -fno-math-errno "
          << opts.optLevel;
    if (opts.nativeArch)
        flags << " -march=native";
    if (opts.openmp)
        flags << " -fopenmp";
    if (!opts.vectorize)
        flags << " -fno-tree-vectorize -fno-tree-slp-vectorize";
    if (!opts.extraFlags.empty())
        flags << " " << opts.extraFlags;

    // The cache key covers everything that shapes the object code:
    // the generated source, every compiler flag, and the compiler's
    // own identity/version.
    const char *env_cache = std::getenv("POLYMAGE_JIT_CACHE");
    const bool use_cache =
        opts.cache &&
        !(env_cache != nullptr && std::string(env_cache) == "0");
    std::string cache_so, cache_cpp;
    if (use_cache) {
        const std::string cdir = cacheDir();
        if (!cdir.empty()) {
            std::uint64_t h = fnv1a(source);
            h = fnv1a(opts.compiler + " " + flags.str(), h);
            h = fnv1a(compilerVersion(opts.compiler), h);
            char key[32];
            std::snprintf(key, sizeof key, "%016llx",
                          (unsigned long long)h);
            cache_so = cdir + "/" + key + ".so";
            cache_cpp = cdir + "/" + key + ".cpp";
        }
    }

    if (!cache_so.empty() && fs::exists(cache_so)) {
        JitModule mod;
        mod.handle_ = dlopen(cache_so.c_str(), RTLD_NOW | RTLD_LOCAL);
        if (mod.handle_ != nullptr) {
            mod.fromCache_ = true;
            if (fs::exists(cache_cpp))
                mod.sourcePath_ = cache_cpp;
            return mod;
        }
        // Unloadable entry (corrupt or wrong-arch): rebuild over it.
        std::error_code ec;
        fs::remove(cache_so, ec);
    }

    char tmpl[] = "/tmp/polymage_jit_XXXXXX";
    const char *dir = mkdtemp(tmpl);
    if (dir == nullptr)
        internalError("mkdtemp failed for JIT compilation");

    JitModule mod;
    mod.dir_ = dir;
    mod.keep_ = opts.keepFiles;
    mod.sourcePath_ = mod.dir_ + "/pipeline.cpp";
    const std::string so_path = mod.dir_ + "/pipeline.so";
    const std::string err_path = mod.dir_ + "/compile.log";

    {
        std::ofstream out(mod.sourcePath_);
        out << source;
        if (!out)
            internalError("cannot write JIT source to ",
                          mod.sourcePath_);
    }

    std::ostringstream cmd;
    cmd << opts.compiler << " " << flags.str() << " '"
        << mod.sourcePath_ << "' -o '" << so_path << "' 2> '"
        << err_path << "'";

    if (std::system(cmd.str().c_str()) != 0) {
        const std::string log = readFile(err_path);
        mod.keep_ = true; // preserve evidence
        internalError("JIT compilation failed (sources kept in ",
                      mod.dir_, "):\n", cmd.str(), "\n", log);
    }

    mod.handle_ = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (mod.handle_ == nullptr) {
        mod.keep_ = true;
        internalError("dlopen failed: ", dlerror());
    }

    if (!cache_so.empty()) {
        publishToCache(so_path, cache_so);
        publishToCache(mod.sourcePath_, cache_cpp);
    }
    return mod;
}

JitModule::JitModule(JitModule &&o) noexcept
    : handle_(o.handle_), dir_(std::move(o.dir_)),
      sourcePath_(std::move(o.sourcePath_)), keep_(o.keep_),
      fromCache_(o.fromCache_)
{
    o.handle_ = nullptr;
    o.dir_.clear();
}

JitModule &
JitModule::operator=(JitModule &&o) noexcept
{
    if (this != &o) {
        this->~JitModule();
        new (this) JitModule(std::move(o));
    }
    return *this;
}

JitModule::~JitModule()
{
    if (handle_ != nullptr)
        dlclose(handle_);
    if (!dir_.empty() && !keep_)
        removeTree(dir_);
}

void *
JitModule::symbol(const std::string &name) const
{
    PM_ASSERT(handle_ != nullptr, "module not loaded");
    void *sym = dlsym(handle_, name.c_str());
    if (sym == nullptr)
        internalError("symbol '", name, "' not found in JIT module");
    return sym;
}

} // namespace polymage::rt
