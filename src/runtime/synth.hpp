/**
 * @file
 * Synthetic input generators.  The paper benchmarks on camera raw
 * frames and photographs; this reproduction generates structured test
 * patterns (band-limited noise over gradients, Bayer mosaics, focus
 * masks) that exercise the same value ranges and code paths.  All
 * generators are deterministic in the seed.
 */
#ifndef POLYMAGE_RUNTIME_SYNTH_HPP
#define POLYMAGE_RUNTIME_SYNTH_HPP

#include <cstdint>

#include "runtime/buffer.hpp"

namespace polymage::rt::synth {

/** Float image in [0, 1): smooth gradients plus band-limited detail. */
Buffer photo(std::int64_t rows, std::int64_t cols,
             std::uint64_t seed = 1);

/** 3-channel float image (planes outermost): photo per channel. */
Buffer photoRgb(std::int64_t rows, std::int64_t cols,
                std::uint64_t seed = 1);

/** UChar image 0..255 with the photo structure. */
Buffer photoU8(std::int64_t rows, std::int64_t cols,
               std::uint64_t seed = 1);

/** 10-bit GRBG Bayer mosaic (UShort, values 0..1023). */
Buffer bayerRaw(std::int64_t rows, std::int64_t cols,
                std::uint64_t seed = 1);

/** Soft vertical half-half blend mask in [0, 1] (pyramid blending). */
Buffer blendMask(std::int64_t rows, std::int64_t cols);

/**
 * Sparse alpha mask: fraction @p density of pixels carry samples
 * (multiscale interpolation input).
 */
Buffer sparseAlpha(std::int64_t rows, std::int64_t cols, double density,
                   std::uint64_t seed = 1);

} // namespace polymage::rt::synth

#endif // POLYMAGE_RUNTIME_SYNTH_HPP
