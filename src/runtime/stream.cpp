/**
 * @file
 * rt::StreamExecutable -- ring rotation around a compiled pipeline.
 */
#include "runtime/stream.hpp"

#include <cstring>
#include <utility>

#include "interp/interpreter.hpp"
#include "support/diagnostics.hpp"

namespace polymage::rt {

namespace {

/** Euclidean (always non-negative) modulo. */
int
wrap(long long v, int depth)
{
    const long long m = v % depth;
    return int(m < 0 ? m + depth : m);
}

} // namespace

StreamExecutable::StreamExecutable(std::shared_ptr<const Executable> exe,
                                   std::vector<std::int64_t> params)
    : exe_(std::move(exe)), params_(std::move(params))
{
    PM_ASSERT(exe_ != nullptr, "null executable");
    plan_ = &exe_->info().stream;
    if (!plan_->streaming) {
        specError("pipeline '", exe_->info().spec.name(),
                  "' is not a streaming pipeline (no prev() taps); "
                  "use Executable::run directly");
    }
    const auto &g = exe_->info().graph;

    // Persistent rings, zero-initialised (warm-up frames read zeros).
    rings_.reserve(plan_->rings.size());
    for (const auto &r : plan_->rings) {
        PM_ASSERT(!r.taps.empty(), "ring without taps");
        const dsl::ImageData &tap = *g.images()[r.taps[0].inputIndex];
        const auto shape = interp::imageShape(tap, g, params_);
        std::vector<Buffer> slots;
        slots.reserve(r.depth);
        for (int j = 0; j < r.depth; ++j)
            slots.emplace_back(tap.dtype(), shape);
        rings_.push_back(std::move(slots));
    }

    // Persistent output table.  Synthetic feedback outputs stay empty
    // placeholders: during a step the current ring slot is swapped in,
    // so the generated code writes the ring directly (never copied).
    const auto &outs = g.outputs();
    outputs_.reserve(outs.size());
    for (std::size_t i = 0; i < outs.size(); ++i) {
        bool synthetic = false;
        for (const auto &r : plan_->rings)
            synthetic |= r.syntheticOutput &&
                         r.sourceOutputIndex == int(i);
        if (synthetic) {
            outputs_.emplace_back();
        } else {
            const pg::Stage &s = g.stage(outs[std::size_t(i)]);
            outputs_.emplace_back(s.callable->dtype(),
                                  interp::stageShape(s, g, params_));
        }
    }
    callInputs_.assign(g.images().size(), nullptr);
}

StreamExecutable
StreamExecutable::build(const dsl::PipelineSpec &spec,
                        std::vector<std::int64_t> params,
                        const CompileOptions &opts)
{
    auto exe = std::make_shared<Executable>(
        Executable::build(spec, opts));
    return StreamExecutable(std::move(exe), std::move(params));
}

const std::vector<Buffer> &
StreamExecutable::step(const std::vector<const Buffer *> &inputs,
                       TileScheduler *sched)
{
    if (int(inputs.size()) != plan_->declaredInputs) {
        specError("stream step: got ", inputs.size(),
                  " inputs; expected ", plan_->declaredInputs);
    }
    for (int i = 0; i < plan_->declaredInputs; ++i)
        callInputs_[std::size_t(i)] = inputs[std::size_t(i)];
    for (std::size_t r = 0; r < plan_->rings.size(); ++r) {
        const core::RingSpec &ring = plan_->rings[r];
        // Taps read the slots of frames t-k.  The slot written this
        // frame (t mod depth) is never a tap (k >= 1 and k < depth),
        // and a slot read during warm-up (t-k < 0) has no writer
        // before frame t, so it still holds its zero fill.
        for (const auto &tap : ring.taps) {
            callInputs_[std::size_t(tap.inputIndex)] =
                &rings_[r][std::size_t(
                    wrap(frame_ - tap.delay, ring.depth))];
        }
        // Ingest the current frame of input-image rings up front (the
        // tap slots for this frame's reads are older slots).
        if (ring.fromInput) {
            Buffer &slot =
                rings_[r][std::size_t(wrap(frame_, ring.depth))];
            const Buffer *src =
                inputs[std::size_t(ring.sourceInputIndex)];
            if (src->bytes() != slot.bytes()) {
                specError("stream step: input '", ring.name,
                          "' does not match the session shape");
            }
            std::memcpy(slot.data(), src->data(),
                        std::size_t(slot.bytes()));
        }
    }
    // Swap the current slot of each feedback ring into the output
    // table: the entry point writes the ring in place.
    for (std::size_t r = 0; r < plan_->rings.size(); ++r) {
        const core::RingSpec &ring = plan_->rings[r];
        if (!ring.fromInput && ring.syntheticOutput) {
            std::swap(outputs_[std::size_t(ring.sourceOutputIndex)],
                      rings_[r][std::size_t(wrap(frame_, ring.depth))]);
        }
    }
    if (sched != nullptr && exe_->hasTaskEntry()) {
        // Shared tile pool: the frame's tiles drain through the
        // work-stealing scheduler alongside other requests' tasks.
        TaskInvocation inv = exe_->prepareTasks(
            params_, callInputs_, outputs_, exe_->pool());
        auto ticket = sched->submit(
            [&inv](long long phase, long long lo, long long hi) {
                inv.run(phase, lo, hi);
            },
            inv.phaseCounts());
        const std::string err = sched->helpWhile(ticket);
        if (!err.empty()) {
            // Restore the ring slots before surfacing the failure.
            for (std::size_t r = 0; r < plan_->rings.size(); ++r) {
                const core::RingSpec &ring = plan_->rings[r];
                if (!ring.fromInput && ring.syntheticOutput)
                    std::swap(
                        outputs_[std::size_t(ring.sourceOutputIndex)],
                        rings_[r][std::size_t(
                            wrap(frame_, ring.depth))]);
            }
            specError("stream step failed: ", err);
        }
    } else {
        exe_->runInto(params_, callInputs_, outputs_, exe_->pool());
    }
    for (std::size_t r = 0; r < plan_->rings.size(); ++r) {
        const core::RingSpec &ring = plan_->rings[r];
        if (ring.fromInput)
            continue;
        Buffer &slot = rings_[r][std::size_t(wrap(frame_, ring.depth))];
        if (ring.syntheticOutput) {
            // Swap back: the slot now holds frame t, the placeholder
            // returns to the output table.
            std::swap(outputs_[std::size_t(ring.sourceOutputIndex)],
                      slot);
        } else {
            // Declared live-out feedback: the caller keeps the stable
            // output buffer, the ring gets a copy.
            const Buffer &out =
                outputs_[std::size_t(ring.sourceOutputIndex)];
            std::memcpy(slot.data(), out.data(),
                        std::size_t(slot.bytes()));
        }
    }
    ++frame_;
    return outputs_;
}

MemoryStats
StreamExecutable::memoryStats() const
{
    MemoryStats m = exe_->memoryStats();
    for (const auto &slots : rings_) {
        for (const auto &b : slots) {
            ++m.ringBuffers;
            m.ringBytes += b.bytes();
        }
    }
    return m;
}

} // namespace polymage::rt
