#include "runtime/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "support/diagnostics.hpp"

namespace polymage::rt {

/** Internal state of one submitted job. */
struct SchedJob
{
    TileScheduler::PhaseRunner run;
    std::vector<long long> counts;
    /** Current phase index.  Written only by submit() and by the
     * worker that retires the phase's last task -- at that moment no
     * other thread holds a live chunk of this job. */
    std::size_t phase = 0;
    /** Tasks (not chunks) outstanding in the current phase. */
    std::atomic<long long> remaining{0};
    /** Chunk descriptors of the current phase; rebuilt at each phase
     * transition by the sole retiring worker. */
    std::vector<Chunk> chunkStore;
    std::atomic<bool> failed{false};
    /** Lock-free mirror of `done` so helpWhile() can poll without
     * taking the job mutex on every chunk. */
    std::atomic<bool> finished{false};

    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::string error;
};

namespace {

/**
 * Chase-Lev work-stealing deque of chunk pointers.  The owning worker
 * pushes and pops at the bottom; thieves race CAS at the top.  Fixed
 * capacity: a full deque spills to the scheduler's injection queue,
 * which only costs a mutex on pathological fan-out.
 */
class WorkDeque
{
  public:
    explicit WorkDeque(std::size_t log2_cap = 13)
        : buf_(std::size_t(1) << log2_cap),
          mask_(std::int64_t(buf_.size()) - 1)
    {
    }

    /** Owner only.  False when full (caller spills to injection). */
    bool
    push(Chunk *c)
    {
        const std::int64_t b = bottom_.load(std::memory_order_relaxed);
        const std::int64_t t = top_.load(std::memory_order_acquire);
        if (b - t >= std::int64_t(buf_.size()))
            return false;
        buf_[std::size_t(b & mask_)].store(c,
                                           std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_release);
        bottom_.store(b + 1, std::memory_order_relaxed);
        return true;
    }

    /** Owner only.  Null when empty. */
    Chunk *
    pop()
    {
        const std::int64_t b =
            bottom_.load(std::memory_order_relaxed) - 1;
        bottom_.store(b, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        std::int64_t t = top_.load(std::memory_order_relaxed);
        Chunk *c = nullptr;
        if (t <= b) {
            c = buf_[std::size_t(b & mask_)].load(
                std::memory_order_relaxed);
            if (t == b) {
                // Last element: race thieves for it.
                if (!top_.compare_exchange_strong(
                        t, t + 1, std::memory_order_seq_cst,
                        std::memory_order_relaxed))
                    c = nullptr;
                bottom_.store(b + 1, std::memory_order_relaxed);
            }
        } else {
            bottom_.store(b + 1, std::memory_order_relaxed);
        }
        return c;
    }

    /** Any thread.  Null when empty or the CAS race was lost. */
    Chunk *
    steal()
    {
        std::int64_t t = top_.load(std::memory_order_acquire);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        const std::int64_t b = bottom_.load(std::memory_order_acquire);
        if (t >= b)
            return nullptr;
        Chunk *c =
            buf_[std::size_t(t & mask_)].load(std::memory_order_relaxed);
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed))
            return nullptr;
        return c;
    }

  private:
    std::vector<std::atomic<Chunk *>> buf_;
    std::int64_t mask_;
    std::atomic<std::int64_t> top_{0};
    std::atomic<std::int64_t> bottom_{0};
};

/** Chunks each worker's share of a phase is split into (the grain
 * divisor: count / (workers * this)). */
constexpr long long kChunksPerWorker = 8;

std::uint64_t
xorshift(std::uint64_t &s)
{
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
}

} // namespace

struct TileScheduler::Worker
{
    WorkDeque deque;
    std::uint64_t rng;
};

TileScheduler::TileScheduler(Options opts) : opts_(opts)
{
    int n = opts_.workers;
    if (n < 0) {
        n = 0; // thread-less: helpWhile() callers execute everything
    } else if (n == 0) {
        n = int(std::thread::hardware_concurrency());
        if (n <= 0)
            n = 1;
    }
    opts_.grain = std::max<long long>(1, opts_.grain);
    workers_.reserve(std::size_t(n));
    for (int i = 0; i < n; ++i) {
        auto w = std::make_unique<Worker>();
        w->rng = 0x9E3779B97F4A7C15ull * std::uint64_t(i + 1) ^
                 0xD1B54A32D192ED03ull;
        workers_.push_back(std::move(w));
    }
    threads_.reserve(std::size_t(n));
    for (int i = 0; i < n; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

TileScheduler::~TileScheduler()
{
    {
        std::unique_lock<std::mutex> lock(injectMu_);
        // Let in-flight jobs drain first: workers only exit once
        // stopping_ is set, and it is only set when no chunk can be
        // anywhere but a deque already being emptied.
        wake_.wait(lock, [&] { return live_.empty(); });
        stopping_ = true;
        wake_.notify_all();
    }
    for (std::thread &t : threads_)
        if (t.joinable())
            t.join();
}

std::vector<Chunk>
TileScheduler::chunksOf(SchedJob &job, int workers, long long grain)
{
    const long long count = job.counts[job.phase];
    const long long per = std::max(
        grain, count / (std::max(1, workers) * kChunksPerWorker));
    std::vector<Chunk> out;
    out.reserve(std::size_t((count + per - 1) / per));
    for (long long lo = 0; lo < count; lo += per) {
        Chunk c;
        c.job = &job;
        c.phase = (long long)job.phase;
        c.lo = lo;
        c.hi = std::min(lo + per - 1, count - 1);
        out.push_back(c);
    }
    return out;
}

TileScheduler::Ticket
TileScheduler::submit(PhaseRunner run,
                      std::vector<long long> phase_counts)
{
    PM_ASSERT(run != nullptr, "TileScheduler::submit without a runner");
    auto job = std::make_shared<SchedJob>();
    job->run = std::move(run);
    job->counts = std::move(phase_counts);
    while (job->phase < job->counts.size() &&
           job->counts[job->phase] <= 0)
        ++job->phase;

    Ticket t;
    t.job_ = job;
    if (job->phase >= job->counts.size()) {
        // Nothing to do: complete inline.
        std::lock_guard<std::mutex> lock(job->mu);
        job->done = true;
        job->finished.store(true, std::memory_order_release);
        jobsCompleted_.fetch_add(1, std::memory_order_relaxed);
        return t;
    }

    job->chunkStore = chunksOf(*job, workers(), opts_.grain);
    job->remaining.store(job->counts[job->phase],
                         std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(injectMu_);
        live_.push_back(job);
        for (Chunk &c : job->chunkStore)
            inject_.push_back(c);
        wake_.notify_all();
    }
    return t;
}

std::string
TileScheduler::wait(const Ticket &t)
{
    PM_ASSERT(t.job_ != nullptr, "wait() on an empty Ticket");
    SchedJob &job = *t.job_;
    std::unique_lock<std::mutex> lock(job.mu);
    job.cv.wait(lock, [&] { return job.done; });
    return job.error;
}

std::string
TileScheduler::helpWhile(const Ticket &t)
{
    PM_ASSERT(t.job_ != nullptr, "helpWhile() on an empty Ticket");
    SchedJob &job = *t.job_;
    const int n = int(workers_.size());
    std::uint64_t rng =
        0xA24BAED4963EE407ull ^
        std::uint64_t(reinterpret_cast<std::uintptr_t>(&job));
    while (!job.finished.load(std::memory_order_acquire)) {
        // Injection queue first: submitted jobs (this one included)
        // seed their first phase there.
        {
            std::unique_lock<std::mutex> lock(injectMu_);
            if (!inject_.empty()) {
                Chunk c = inject_.front();
                inject_.pop_front();
                lock.unlock();
                runChunk(c, nullptr);
                continue;
            }
        }
        // Steal from the pool workers.
        bool got = false;
        for (int attempt = 0; attempt < 2 * n && !got; ++attempt) {
            const int victim = int(xorshift(rng) % std::uint64_t(n));
            stealAttempts_.fetch_add(1, std::memory_order_relaxed);
            if (Chunk *c =
                    workers_[std::size_t(victim)]->deque.steal()) {
                steals_.fetch_add(1, std::memory_order_relaxed);
                runChunk(*c, nullptr);
                got = true;
            }
        }
        if (got)
            continue;
        // Nothing runnable this sweep -- but never block for good:
        // another helper may retire the last chunk of this job's
        // phase, seed the next phase into the injection queue, and
        // leave.  On a thread-less pool no one else would pick that
        // up, so poll with the same timed wait the workers use.
        std::unique_lock<std::mutex> lock(injectMu_);
        if (inject_.empty())
            wake_.wait_for(lock, std::chrono::microseconds(200));
    }
    return wait(t);
}

void
TileScheduler::runChunk(Chunk c, Worker *self)
{
    SchedJob &job = *c.job;
    const long long tasks = c.hi - c.lo + 1;
    if (!job.failed.load(std::memory_order_relaxed)) {
        try {
            job.run(c.phase, c.lo, c.hi);
            tasksExecuted_.fetch_add(std::uint64_t(tasks),
                                     std::memory_order_relaxed);
        } catch (const std::exception &e) {
            if (!job.failed.exchange(true)) {
                std::lock_guard<std::mutex> lock(job.mu);
                job.error = e.what();
            }
        } catch (...) {
            if (!job.failed.exchange(true)) {
                std::lock_guard<std::mutex> lock(job.mu);
                job.error = "unknown task error";
            }
        }
    }
    chunksExecuted_.fetch_add(1, std::memory_order_relaxed);
    retireChunk(job, tasks, self);
}

void
TileScheduler::retireChunk(SchedJob &job, long long tasks,
                           Worker *self)
{
    if (job.remaining.fetch_sub(tasks, std::memory_order_acq_rel) !=
        tasks)
        return; // phase still has outstanding tasks elsewhere
    // Sole live reference to the job's phase state: advance it.
    ++job.phase;
    while (job.phase < job.counts.size() &&
           job.counts[job.phase] <= 0)
        ++job.phase;
    if (job.phase >= job.counts.size()) {
        // Job complete: drop it from the live set, then wake waiters.
        std::shared_ptr<SchedJob> keep;
        {
            std::lock_guard<std::mutex> lock(injectMu_);
            for (auto it = live_.begin(); it != live_.end(); ++it) {
                if (it->get() == &job) {
                    keep = std::move(*it);
                    live_.erase(it);
                    break;
                }
            }
            wake_.notify_all(); // the destructor waits on live_
        }
        jobsCompleted_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(job.mu);
        job.done = true;
        job.finished.store(true, std::memory_order_release);
        job.cv.notify_all();
        return;
    }
    // Seed the next phase onto this worker's own deque: thieves
    // redistribute it, and the common small phase stays local.
    job.chunkStore = chunksOf(job, workers(), opts_.grain);
    job.remaining.store(job.counts[job.phase],
                        std::memory_order_release);
    if (self == nullptr) {
        // External helper: seed at the injection queue's FRONT so the
        // job being driven continues depth-first.  Appending would
        // park the continuation behind every other in-flight job's
        // chunks -- breadth-first across the batch, with all their
        // working sets thrashing the cache at once.
        std::lock_guard<std::mutex> lock(injectMu_);
        for (auto it = job.chunkStore.rbegin();
             it != job.chunkStore.rend(); ++it)
            inject_.push_front(*it);
        wake_.notify_all();
        return;
    }
    bool spilled = false;
    for (Chunk &c : job.chunkStore) {
        if (!self->deque.push(&c)) {
            std::lock_guard<std::mutex> lock(injectMu_);
            inject_.push_back(c);
            spilled = true;
        }
    }
    if (spilled || job.chunkStore.size() > 1) {
        std::lock_guard<std::mutex> lock(injectMu_);
        wake_.notify_all();
    }
}

void
TileScheduler::workerLoop(int index)
{
    Worker &self = *workers_[std::size_t(index)];
    const int n = int(workers_.size());
    for (;;) {
        // Own work first (bottom of the local deque: hot end).
        if (Chunk *c = self.deque.pop()) {
            runChunk(*c, &self);
            continue;
        }
        // Steal: randomized victims, bounded attempts per round.
        bool got = false;
        for (int attempt = 0; attempt < 2 * n && !got; ++attempt) {
            const int victim = int(xorshift(self.rng) % std::uint64_t(n));
            if (victim == index || n == 1)
                continue;
            stealAttempts_.fetch_add(1, std::memory_order_relaxed);
            if (Chunk *c = workers_[std::size_t(victim)]->deque.steal()) {
                steals_.fetch_add(1, std::memory_order_relaxed);
                runChunk(*c, &self);
                got = true;
            }
        }
        if (got)
            continue;
        // Injection queue, then sleep.  The timed wait bounds the
        // latency of any wake-up this worker could not observe (the
        // notify raced its unlocked steal sweep).
        std::unique_lock<std::mutex> lock(injectMu_);
        if (!inject_.empty()) {
            Chunk c = inject_.front();
            inject_.pop_front();
            lock.unlock();
            runChunk(c, &self);
            continue;
        }
        if (stopping_)
            return;
        wake_.wait_for(lock, std::chrono::microseconds(200));
    }
}

SchedulerStats
TileScheduler::stats() const
{
    SchedulerStats s;
    s.tasksExecuted = tasksExecuted_.load(std::memory_order_relaxed);
    s.chunksExecuted = chunksExecuted_.load(std::memory_order_relaxed);
    s.steals = steals_.load(std::memory_order_relaxed);
    s.stealAttempts = stealAttempts_.load(std::memory_order_relaxed);
    s.jobsCompleted = jobsCompleted_.load(std::memory_order_relaxed);
    return s;
}

} // namespace polymage::rt
