#include "runtime/buffer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace polymage::rt {

using dsl::DType;

Buffer::Buffer(DType dtype, std::vector<std::int64_t> dims)
    : dtype_(dtype), dims_(std::move(dims))
{
    PM_ASSERT(!dims_.empty(), "buffer must have at least one dimension");
    numel_ = 1;
    for (auto d : dims_) {
        PM_ASSERT(d > 0, "buffer dimensions must be positive");
        numel_ *= d;
    }
    strides_.assign(dims_.size(), 1);
    for (int d = int(dims_.size()) - 2; d >= 0; --d)
        strides_[d] = strides_[d + 1] * dims_[d + 1];

    const std::size_t elem = dsl::dtypeSize(dtype_);
    std::size_t size = std::size_t(numel_) * elem;
    // Round up to the 64-byte alignment granule.
    size = (size + 63) & ~std::size_t(63);
    void *p = std::aligned_alloc(64, size);
    PM_ASSERT(p != nullptr, "buffer allocation failed");
    std::memset(p, 0, size);
    data_.reset(p);
}

Buffer::Buffer(const Buffer &o) : Buffer(o.dtype_, o.dims_)
{
    std::memcpy(data_.get(), o.data_.get(), std::size_t(bytes()));
}

Buffer &
Buffer::operator=(const Buffer &o)
{
    if (this != &o) {
        Buffer tmp(o);
        *this = std::move(tmp);
    }
    return *this;
}

std::int64_t
Buffer::flatIndex(const std::int64_t *coords) const
{
    std::int64_t flat = 0;
    for (std::size_t d = 0; d < dims_.size(); ++d)
        flat += coords[d] * strides_[d];
    return flat;
}

bool
Buffer::inBounds(const std::int64_t *coords) const
{
    for (std::size_t d = 0; d < dims_.size(); ++d) {
        if (coords[d] < 0 || coords[d] >= dims_[d])
            return false;
    }
    return true;
}

double
Buffer::loadAsDouble(std::int64_t flat) const
{
    switch (dtype_) {
      case DType::UChar:
        return reinterpret_cast<const unsigned char *>(data())[flat];
      case DType::Short:
        return reinterpret_cast<const short *>(data())[flat];
      case DType::UShort:
        return reinterpret_cast<const unsigned short *>(data())[flat];
      case DType::Int:
        return reinterpret_cast<const int *>(data())[flat];
      case DType::Long:
        return double(
            reinterpret_cast<const long long *>(data())[flat]);
      case DType::Float:
        return reinterpret_cast<const float *>(data())[flat];
      case DType::Double:
        return reinterpret_cast<const double *>(data())[flat];
    }
    internalError("unknown dtype");
}

void
Buffer::storeFromDouble(std::int64_t flat, double v)
{
    switch (dtype_) {
      case DType::UChar:
        dataAs<unsigned char>()[flat] =
            static_cast<unsigned char>(static_cast<std::int64_t>(v));
        return;
      case DType::Short:
        dataAs<short>()[flat] =
            static_cast<short>(static_cast<std::int64_t>(v));
        return;
      case DType::UShort:
        dataAs<unsigned short>()[flat] =
            static_cast<unsigned short>(static_cast<std::int64_t>(v));
        return;
      case DType::Int:
        dataAs<int>()[flat] =
            static_cast<int>(static_cast<std::int64_t>(v));
        return;
      case DType::Long:
        dataAs<long long>()[flat] = static_cast<long long>(v);
        return;
      case DType::Float:
        dataAs<float>()[flat] = static_cast<float>(v);
        return;
      case DType::Double:
        dataAs<double>()[flat] = v;
        return;
    }
    internalError("unknown dtype");
}

void
Buffer::fill(double v)
{
    for (std::int64_t i = 0; i < numel_; ++i)
        storeFromDouble(i, v);
}

double
Buffer::maxAbsDiff(const Buffer &o) const
{
    PM_ASSERT(dims_ == o.dims_, "shape mismatch in comparison");
    double worst = 0.0;
    for (std::int64_t i = 0; i < numel_; ++i)
        worst = std::max(worst,
                         std::abs(loadAsDouble(i) - o.loadAsDouble(i)));
    return worst;
}

BufferPool::~BufferPool()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[p, b] : blocks_) {
        PM_ASSERT(!b.inUse, "BufferPool destroyed with block in use");
        std::free(p);
    }
}

void *
BufferPool::acquire(std::size_t bytes)
{
    bytes = std::max<std::size_t>(bytes, 64);
    bytes = (bytes + 63) & ~std::size_t(63);

    std::lock_guard<std::mutex> lock(mu_);
    ++acquires_;
    void *p = nullptr;
    auto it = free_.lower_bound(bytes);
    if (it != free_.end()) {
        p = it->second;
        bytes = it->first;
        free_.erase(it);
    } else {
        p = std::aligned_alloc(64, bytes);
        PM_ASSERT(p != nullptr, "buffer pool allocation failed");
        blocks_[p] = Block{bytes, false};
        ++blockAllocs_;
        bytesOwned_ += std::int64_t(bytes);
    }
    blocks_[p].inUse = true;
    bytesInUse_ += std::int64_t(bytes);
    peakBytesInUse_ = std::max(peakBytesInUse_, bytesInUse_);
    return p;
}

void
BufferPool::release(void *p) noexcept
{
    if (p == nullptr)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = blocks_.find(p);
    if (it == blocks_.end() || !it->second.inUse)
        return; // foreign or double release: ignore
    it->second.inUse = false;
    bytesInUse_ -= std::int64_t(it->second.bytes);
    free_.emplace(it->second.bytes, p);
}

void
BufferPool::trim()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[bytes, p] : free_) {
        bytesOwned_ -= std::int64_t(bytes);
        blocks_.erase(p);
        std::free(p);
    }
    free_.clear();
}

BufferPool::Stats
BufferPool::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Stats s;
    s.bytesOwned = bytesOwned_;
    s.bytesInUse = bytesInUse_;
    s.peakBytesInUse = peakBytesInUse_;
    s.blockAllocs = blockAllocs_;
    s.acquires = acquires_;
    return s;
}

} // namespace polymage::rt
