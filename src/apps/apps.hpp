/**
 * @file
 * The seven benchmark applications of the paper (§4, Table 2), each
 * expressed as a PolyMage DSL specification.  Builders take the
 * estimated image dimensions (paper §3.5: estimates steer grouping but
 * the generated code stays valid for all sizes).
 */
#ifndef POLYMAGE_APPS_APPS_HPP
#define POLYMAGE_APPS_APPS_HPP

#include <cstdint>
#include <vector>

#include "dsl/dsl.hpp"

namespace polymage::apps {

/**
 * Runtime parameter values for the pyramid-based pipelines (pyramid
 * blend, multiscale interpolation, local Laplacian): R, C, then the
 * per-level row sizes S1.. and column sizes T1.. (floor halving).
 */
std::vector<std::int64_t> pyramidParams(std::int64_t rows,
                                        std::int64_t cols, int levels);

/**
 * Harris corner detection (paper Fig. 1): 3x3 derivative stencils,
 * products, 3x3 box sums, and the corner response.  11 stages.
 * Input: Float image of (R+2) x (C+2).  Output: harris response.
 */
dsl::PipelineSpec buildHarris(std::int64_t rows_est = 6400,
                              std::int64_t cols_est = 6400);

/**
 * Unsharp mask: blur (two separable 3-tap stencils) and a thresholded
 * sharpen of a 3-channel image.  4 stages.
 * Input: Float image of 3 x (R+4) x (C+4).
 */
dsl::PipelineSpec buildUnsharpMask(std::int64_t rows_est = 2048,
                                   std::int64_t cols_est = 2048);

/**
 * Grayscale histogram (paper Fig. 3) plus equalisation: accumulator,
 * prefix sum (self-recurrent scan), and a data-dependent remap.
 */
dsl::PipelineSpec buildHistogramEq(std::int64_t rows_est = 2048,
                                   std::int64_t cols_est = 2048);

/**
 * Bilateral grid (paper §4): grid construction as a reduction,
 * 3-axis grid blurs, and trilinear slicing.  7 logical stages.
 * Input: Float image (values in [0,1)) of R x C.
 */
dsl::PipelineSpec buildBilateralGrid(std::int64_t rows_est = 2560,
                                     std::int64_t cols_est = 1536);

/**
 * Camera raw processing pipeline (paper §4): hot-pixel suppression,
 * demosaicking from a GRBG Bayer mosaic, white balance, colour
 * correction, and a gamma curve via a lookup table.  ~32 stages.
 * Input: UShort raw image of (R+4) x (C+4).
 */
dsl::PipelineSpec buildCameraPipeline(std::int64_t rows_est = 2528,
                                      std::int64_t cols_est = 1920);

/**
 * Pyramid blending (paper §4, Fig. 8): Gaussian/Laplacian pyramids of
 * two inputs, mask-weighted merge per level, and collapse.
 *
 * @param levels pyramid depth (paper uses 4)
 */
dsl::PipelineSpec buildPyramidBlend(std::int64_t rows_est = 2048,
                                    std::int64_t cols_est = 2048,
                                    int levels = 4);

/**
 * Multiscale interpolation (paper §4): downsample an image+mask to
 * multiple scales, then interpolate missing values coarse-to-fine.
 *
 * @param levels scale count (paper's benchmark uses ~10 for 49 stages;
 *               smaller values shrink the pipeline proportionally)
 */
dsl::PipelineSpec buildMultiscaleInterp(std::int64_t rows_est = 2560,
                                        std::int64_t cols_est = 1536,
                                        int levels = 10);

/**
 * Local Laplacian filter (paper §4): Gaussian pyramid of the input,
 * K remapped Laplacian pyramids, per-level blending by intensity, and
 * collapse.  The stage count grows with levels x k (paper: 99 stages).
 *
 * @param levels pyramid depth
 * @param k number of intensity bins
 */
dsl::PipelineSpec buildLocalLaplacian(std::int64_t rows_est = 2560,
                                      std::int64_t cols_est = 1536,
                                      int levels = 4, int k = 8);

/**
 * Temporal denoise (docs/STREAMING.md): a streaming video chain that
 * blends a separable spatial blur of the current frame with the
 * previous denoised frame (IIR feedback via prev(denoised, 1)), the
 * previous blurred frame, and the raw frames at t-1 and t-2.  The
 * spec carries frame-delay taps (isStreaming()); compile yields a
 * ring-buffer plan exercising all three ring kinds: input-image
 * history, synthetic feedback (blury), and declared-output feedback.
 * Input: Float image of (R+2) x (C+2).  Output: denoised.
 */
dsl::PipelineSpec buildTemporalDenoise(std::int64_t rows_est = 720,
                                       std::int64_t cols_est = 1280);

} // namespace polymage::apps

#endif // POLYMAGE_APPS_APPS_HPP
