/**
 * @file
 * Local Laplacian filter (paper §4, [Paris et al., Aubry et al.]):
 * local contrast enhancement.  A Gaussian pyramid of the input guides,
 * per level and pixel, a data-dependent interpolation between the
 * Laplacian coefficients of K differently-remapped copies of the
 * image; the interpolated Laplacian pyramid is then collapsed.
 *
 * The K remapped copies live along a leading `k` dimension of 3-D
 * pyramid stages (the paper's specification unrolls k into separate
 * stages, hence its higher stage count of 99; the computation is the
 * same).  The guide-driven lookup along k is data-dependent, so k is
 * untileable while x/y fuse and tile normally.
 */
#include "apps/apps.hpp"
#include "apps/pyramid_util.hpp"

namespace polymage::apps {

using namespace dsl;
using detail::Access2;
using detail::PyrDims;

PipelineSpec
buildLocalLaplacian(std::int64_t rows_est, std::int64_t cols_est,
                    int levels, int k)
{
    PM_ASSERT(levels >= 2 && k >= 2, "bad local-laplacian parameters");
    PM_ASSERT((rows_est >> (levels - 1)) >= 2 &&
                  (cols_est >> (levels - 1)) >= 2,
              "estimated sizes too small for the level count");

    Parameter R("R"), C("C");
    std::vector<Parameter> SR{R}, SC{C};
    for (int l = 1; l < levels; ++l) {
        SR.emplace_back("S" + std::to_string(l));
        SC.emplace_back("T" + std::to_string(l));
    }

    Image I("I", DType::Float, {Expr(R), Expr(C)});

    Variable kk("k"), x("x"), y("y");
    Interval kdom(Expr(0), Expr(k - 1));

    const double alpha = 0.25; // detail boost
    const double beta = 1.0;   // tone preservation

    // ---- K remapped copies of the input ------------------------------
    Function remap("remap", {kk, x, y},
                   {kdom, Interval(Expr(0), Expr(R) - 1),
                    Interval(Expr(0), Expr(C) - 1)},
                   DType::Float);
    {
        Expr lev = cast(DType::Float, Expr(kk)) * Expr(1.0 / (k - 1));
        Expr v = I(x, y) - lev;
        remap.define(lev + v * Expr(beta) +
                     v * Expr(alpha) * exp(-(v * v) * Expr(8.0)));
    }

    // ---- Pyramids -----------------------------------------------------
    PyrDims d3; // remapped pyramid: leading k dimension
    d3.preVars = {kk};
    d3.preDom = {kdom};
    d3.x = x;
    d3.y = y;
    PyrDims d2; // guide pyramid
    d2.x = x;
    d2.y = y;

    auto acc3 = [&](const Function &f) {
        return Access2(
            [f, kk](Expr i, Expr j) { return f(Expr(kk), i, j); });
    };
    auto acc2 = [](const Function &f) {
        return Access2([f](Expr i, Expr j) { return f(i, j); });
    };

    std::vector<Function> rG; // remapped Gaussian pyramid, rG[l-1] = l
    {
        Access2 src = acc3(remap);
        for (int l = 0; l + 1 < levels; ++l) {
            Function dx = detail::downsampleRows(
                "r_dx" + std::to_string(l), d3, src, Expr(SR[l + 1]),
                Expr(SC[l]));
            Function g = detail::downsampleCols(
                "r_g" + std::to_string(l + 1), d3, acc3(dx),
                Expr(SR[l + 1]), Expr(SC[l + 1]));
            rG.push_back(g);
            src = acc3(g);
        }
    }
    std::vector<Function> gG; // guide Gaussian pyramid
    {
        Access2 src = Access2([&](Expr i, Expr j) { return I(i, j); });
        for (int l = 0; l + 1 < levels; ++l) {
            Function dx = detail::downsampleRows(
                "g_dx" + std::to_string(l), d2, src, Expr(SR[l + 1]),
                Expr(SC[l]));
            Function g = detail::downsampleCols(
                "g_g" + std::to_string(l + 1), d2, acc2(dx),
                Expr(SR[l + 1]), Expr(SC[l + 1]));
            gG.push_back(g);
            src = acc2(g);
        }
    }

    auto remapLevel = [&](int l) -> Function {
        return l == 0 ? remap : rG[std::size_t(l - 1)];
    };

    // ---- Guide-driven selection of the remapped Laplacians ----------
    // outLap_l(x, y) interpolates along k between the Laplacian
    // coefficients of adjacent remap levels, at the guide intensity.
    auto guideAt = [&](int l, Expr i, Expr j) {
        return l == 0 ? I(i, j) : gG[std::size_t(l - 1)](i, j);
    };
    auto selectK = [&](int l, const std::function<Expr(Expr)> &sample) {
        Expr g = clamp(guideAt(l, Expr(x), Expr(y)), Expr(0.0),
                       Expr(1.0));
        Expr kf = g * Expr(double(k - 1));
        Expr ki = clamp(cast(DType::Int, kf), Expr(0), Expr(k - 2));
        Expr a = kf - cast(DType::Float, ki);
        return sample(ki) * (Expr(1.0) - a) + sample(ki + 1) * a;
    };

    std::vector<Function> outLap;
    outLap.reserve(std::size_t(levels));
    for (int l = 0; l < levels; ++l) {
        Function f("outlap" + std::to_string(l), {x, y},
                   {Interval(Expr(0), Expr(SR[l]) - 1),
                    Interval(Expr(0), Expr(SC[l]) - 1)},
                   DType::Float);
        if (l == levels - 1) {
            // Coarsest level: the Gaussian value itself.
            f.define(selectK(l, [&](Expr ki) {
                return remapLevel(l)(ki, Expr(x), Expr(y));
            }));
        } else {
            Function ux = detail::upsampleRows(
                "r_ux" + std::to_string(l), d3,
                acc3(remapLevel(l + 1)), Expr(SR[l]), Expr(SR[l + 1]),
                Expr(SC[l + 1]));
            Function up = detail::upsampleCols(
                "r_up" + std::to_string(l), d3, acc3(ux), Expr(SC[l]),
                Expr(SC[l + 1]), Expr(SR[l]));
            f.define(selectK(l, [&](Expr ki) {
                return remapLevel(l)(ki, Expr(x), Expr(y)) -
                       up(ki, Expr(x), Expr(y));
            }));
        }
        outLap.push_back(f);
    }

    // ---- Collapse the interpolated pyramid --------------------------
    Function out = outLap[std::size_t(levels - 1)];
    for (int l = levels - 2; l >= 0; --l) {
        Function ux = detail::upsampleRows(
            "o_ux" + std::to_string(l), d2, acc2(out), Expr(SR[l]),
            Expr(SR[l + 1]), Expr(SC[l + 1]));
        Function up = detail::upsampleCols(
            "o_up" + std::to_string(l), d2, acc2(ux), Expr(SC[l]),
            Expr(SC[l + 1]), Expr(SR[l]));
        Function next("out" + std::to_string(l), {x, y},
                      {Interval(Expr(0), Expr(SR[l]) - 1),
                       Interval(Expr(0), Expr(SC[l]) - 1)},
                      DType::Float);
        next.define(outLap[std::size_t(l)](x, y) + up(x, y));
        out = next;
    }

    PipelineSpec spec("local_laplacian");
    spec.addParam(R);
    spec.addParam(C);
    for (int l = 1; l < levels; ++l)
        spec.addParam(SR[l]);
    for (int l = 1; l < levels; ++l)
        spec.addParam(SC[l]);
    spec.addInput(I);
    spec.addOutput(out);

    const auto er = detail::levelSizes(rows_est, levels);
    const auto ec = detail::levelSizes(cols_est, levels);
    spec.estimate(R, rows_est);
    spec.estimate(C, cols_est);
    for (int l = 1; l < levels; ++l) {
        spec.estimate(SR[l], er[std::size_t(l)]);
        spec.estimate(SC[l], ec[std::size_t(l)]);
    }
    return spec;
}

} // namespace polymage::apps
