/**
 * @file
 * Multiscale interpolation (paper §4; Halide's "interpolate"): an
 * alpha-premultiplied image with sparse samples is downsampled to many
 * scales (pull), then missing regions are filled coarse-to-fine by
 * blending each level with the upsampled coarser interpolation (push).
 * The channel axis (value, alpha) rides along as a leading dimension.
 */
#include "apps/apps.hpp"
#include "apps/pyramid_util.hpp"

namespace polymage::apps {

using namespace dsl;
using detail::Access2;
using detail::PyrDims;

PipelineSpec
buildMultiscaleInterp(std::int64_t rows_est, std::int64_t cols_est,
                      int levels)
{
    PM_ASSERT(levels >= 2, "interpolation needs at least two levels");
    PM_ASSERT((rows_est >> (levels - 1)) >= 2 &&
                  (cols_est >> (levels - 1)) >= 2,
              "estimated sizes too small for the level count");

    Parameter R("R"), C("C");
    std::vector<Parameter> SR{R}, SC{C};
    for (int l = 1; l < levels; ++l) {
        SR.emplace_back("S" + std::to_string(l));
        SC.emplace_back("T" + std::to_string(l));
    }

    Image I("I", DType::Float, {Expr(2), Expr(R), Expr(C)});

    Variable c("c"), x("x"), y("y");
    PyrDims d;
    d.preVars = {c};
    d.preDom = {Interval(Expr(0), Expr(1))};
    d.x = x;
    d.y = y;

    auto imgAccess = Access2(
        [&](Expr i, Expr j) { return I(Expr(c), i, j); });
    auto funAccess = [&](const Function &f) {
        return Access2(
            [f, c](Expr i, Expr j) { return f(Expr(c), i, j); });
    };

    // Pull: downsample the sparse samples level by level.
    std::vector<Function> down; // down[l-1] is level l
    Access2 src = imgAccess;
    for (int l = 0; l + 1 < levels; ++l) {
        Function dx = detail::downsampleRows(
            "dx" + std::to_string(l), d, src, Expr(SR[l + 1]),
            Expr(SC[l]));
        Function dn = detail::downsampleCols(
            "down" + std::to_string(l + 1), d, funAccess(dx),
            Expr(SR[l + 1]), Expr(SC[l + 1]));
        down.push_back(dn);
        src = funAccess(dn);
    }

    // Push: interpolate coarse-to-fine.
    Function interp = down.back(); // coarsest level passes through
    for (int l = levels - 2; l >= 0; --l) {
        Function ux = detail::upsampleRows(
            "ux" + std::to_string(l), d, funAccess(interp),
            Expr(SR[l]), Expr(SR[l + 1]), Expr(SC[l + 1]));
        Function up = detail::upsampleCols(
            "up" + std::to_string(l), d, funAccess(ux), Expr(SC[l]),
            Expr(SC[l + 1]), Expr(SR[l]));

        Function next("interp" + std::to_string(l), {c, x, y},
                      {Interval(Expr(0), Expr(1)),
                       Interval(Expr(0), Expr(SR[l]) - 1),
                       Interval(Expr(0), Expr(SC[l]) - 1)},
                      DType::Float);
        Expr level_val =
            l == 0 ? I(Expr(c), x, y) : down[l - 1](Expr(c), x, y);
        Expr level_alpha =
            l == 0 ? I(Expr(1), x, y) : down[l - 1](Expr(1), x, y);
        next.define(level_val +
                    (Expr(1.0) - level_alpha) * up(Expr(c), x, y));
        interp = next;
    }

    // Normalise: value / alpha.
    Function norm("norm", {x, y},
                  {Interval(Expr(0), Expr(R) - 1),
                   Interval(Expr(0), Expr(C) - 1)},
                  DType::Float);
    norm.define(interp(Expr(0), x, y) /
                max(interp(Expr(1), x, y), Expr(1e-6)));

    PipelineSpec spec("multiscale_interp");
    spec.addParam(R);
    spec.addParam(C);
    for (int l = 1; l < levels; ++l)
        spec.addParam(SR[l]);
    for (int l = 1; l < levels; ++l)
        spec.addParam(SC[l]);
    spec.addInput(I);
    spec.addOutput(norm);

    const auto er = detail::levelSizes(rows_est, levels);
    const auto ec = detail::levelSizes(cols_est, levels);
    spec.estimate(R, rows_est);
    spec.estimate(C, cols_est);
    for (int l = 1; l < levels; ++l) {
        spec.estimate(SR[l], er[std::size_t(l)]);
        spec.estimate(SC[l], ec[std::size_t(l)]);
    }
    return spec;
}

} // namespace polymage::apps
