/**
 * @file
 * Pyramid blending (paper §4, Fig. 8, [Burt & Adelson]): Gaussian
 * pyramids of two inputs and a mask, Laplacian pyramids of the inputs,
 * per-level mask-weighted blending, and collapse back to full
 * resolution.  Downsampling is separable (the Fig. 8 "down-x, down-y"
 * stage pairs); per-level sizes are pipeline parameters
 * (levelSizeParams provides the runtime values).
 */
#include "apps/apps.hpp"
#include "apps/pyramid_util.hpp"

namespace polymage::apps {

using namespace dsl;
using detail::Access2;
using detail::PyrDims;

PipelineSpec
buildPyramidBlend(std::int64_t rows_est, std::int64_t cols_est,
                  int levels)
{
    PM_ASSERT(levels >= 2, "pyramid blending needs at least two levels");

    Parameter R("R"), C("C");
    std::vector<Parameter> SR{R}, SC{C};
    for (int l = 1; l < levels; ++l) {
        SR.emplace_back("S" + std::to_string(l));
        SC.emplace_back("T" + std::to_string(l));
    }

    Image A("A", DType::Float, {Expr(R), Expr(C)});
    Image B("B", DType::Float, {Expr(R), Expr(C)});
    Image M("M", DType::Float, {Expr(R), Expr(C)});

    PyrDims d;
    auto imgAccess = [](const Image &img) {
        return Access2([img](Expr i, Expr j) { return img(i, j); });
    };
    auto funAccess = [](const Function &f) {
        return Access2([f](Expr i, Expr j) { return f(i, j); });
    };

    // Gaussian pyramids of A, B, and the mask.
    struct Pyramid
    {
        std::vector<Function> g; // g[l] for l >= 1; level 0 is the image
    };
    auto gaussian = [&](const char *tag, const Image &img) {
        Pyramid p;
        Access2 src = imgAccess(img);
        for (int l = 0; l + 1 < levels; ++l) {
            Function dx = detail::downsampleRows(
                std::string(tag) + "_dx" + std::to_string(l), d, src,
                Expr(SR[l + 1]), Expr(SC[l]));
            Function g = detail::downsampleCols(
                std::string(tag) + "_g" + std::to_string(l + 1), d,
                funAccess(dx), Expr(SR[l + 1]), Expr(SC[l + 1]));
            p.g.push_back(g);
            src = funAccess(g);
        }
        return p;
    };
    Pyramid GA = gaussian("a", A);
    Pyramid GB = gaussian("b", B);
    Pyramid GM = gaussian("m", M);

    auto levelOf = [&](const Pyramid &p, const Image &img,
                       int l) -> Access2 {
        return l == 0 ? imgAccess(img) : funAccess(p.g[l - 1]);
    };

    // Upsample of level l+1 to level l for a pyramid.
    auto upsample = [&](const char *tag, int l, const Access2 &src) {
        Function ux = detail::upsampleRows(
            std::string(tag) + "_ux" + std::to_string(l), d, src,
            Expr(SR[l]), Expr(SR[l + 1]), Expr(SC[l + 1]));
        return detail::upsampleCols(
            std::string(tag) + "_u" + std::to_string(l), d,
            funAccess(ux), Expr(SC[l]), Expr(SC[l + 1]), Expr(SR[l]));
    };

    Variable x("x"), y("y");

    // Collapse coarse-to-fine: res_{L-1} blends the coarsest Gaussian
    // levels; res_l adds the blended Laplacian detail to the upsampled
    // coarser result.
    Function res_coarse("res" + std::to_string(levels - 1), {x, y},
                        {Interval(Expr(0), Expr(SR[levels - 1]) - 1),
                         Interval(Expr(0), Expr(SC[levels - 1]) - 1)},
                        DType::Float);
    {
        const int l = levels - 1;
        Expr m = GM.g[l - 1](x, y);
        res_coarse.define(GA.g[l - 1](x, y) * m +
                          GB.g[l - 1](x, y) * (Expr(1.0) - m));
    }

    Function res = res_coarse;
    for (int l = levels - 2; l >= 0; --l) {
        Function upA = upsample(("a_lap" + std::to_string(l)).c_str(),
                                l, funAccess(GA.g[l]));
        Function upB = upsample(("b_lap" + std::to_string(l)).c_str(),
                                l, funAccess(GB.g[l]));
        Function upR = upsample(("res_up" + std::to_string(l)).c_str(),
                                l, funAccess(res));

        Function next("res" + std::to_string(l), {x, y},
                      {Interval(Expr(0), Expr(SR[l]) - 1),
                       Interval(Expr(0), Expr(SC[l]) - 1)},
                      DType::Float);
        Expr m = l == 0 ? M(x, y) : GM.g[l - 1](x, y);
        Expr lapA = levelOf(GA, A, l)(x, y) - upA(x, y);
        Expr lapB = levelOf(GB, B, l)(x, y) - upB(x, y);
        Expr blended = lapA * m + lapB * (Expr(1.0) - m);
        next.define(blended + upR(x, y));
        res = next;
    }

    PipelineSpec spec("pyramid_blend");
    spec.addParam(R);
    spec.addParam(C);
    for (int l = 1; l < levels; ++l)
        spec.addParam(SR[l]);
    for (int l = 1; l < levels; ++l)
        spec.addParam(SC[l]);
    spec.addInput(A);
    spec.addInput(B);
    spec.addInput(M);
    spec.addOutput(res);

    const auto er = detail::levelSizes(rows_est, levels);
    const auto ec = detail::levelSizes(cols_est, levels);
    spec.estimate(R, rows_est);
    spec.estimate(C, cols_est);
    for (int l = 1; l < levels; ++l) {
        spec.estimate(SR[l], er[std::size_t(l)]);
        spec.estimate(SC[l], ec[std::size_t(l)]);
    }
    return spec;
}

} // namespace polymage::apps
