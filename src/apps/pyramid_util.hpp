/**
 * @file
 * Shared builders for pyramid-based pipelines (pyramid blending,
 * multiscale interpolation, local Laplacian): separable 1-D
 * downsample/upsample stages with explicit boundary cases, optionally
 * carrying leading (e.g. channel) dimensions.
 *
 * Per-level sizes are passed as pipeline Parameters so every bound
 * stays affine; levelSizeParams() computes the matching runtime
 * values.
 */
#ifndef POLYMAGE_APPS_PYRAMID_UTIL_HPP
#define POLYMAGE_APPS_PYRAMID_UTIL_HPP

#include <functional>
#include <string>
#include <vector>

#include "dsl/dsl.hpp"

namespace polymage::apps::detail {

/** Access callback for the source of a resampling stage. */
using Access2 = std::function<dsl::Expr(dsl::Expr, dsl::Expr)>;

/** Common pieces of a resampling stage builder. */
struct PyrDims
{
    /** Leading (untouched) dimensions, e.g. a channel axis. */
    std::vector<dsl::Variable> preVars;
    std::vector<dsl::Interval> preDom;
    /** Row/column iteration variables. */
    dsl::Variable x{"x"}, y{"y"};
    dsl::DType dtype = dsl::DType::Float;
};

/**
 * Row downsample: out(x, y) over [0, sr-1] x [0, tc-1] is the [1 2 1]/4
 * vertical filter of src at row 2x, with an averaging case at x == 0.
 * @param sr rows of the output (next-level size)
 * @param tc columns of the output (current-level size)
 */
dsl::Function downsampleRows(const std::string &name, const PyrDims &d,
                             const Access2 &src, dsl::Expr sr,
                             dsl::Expr tc);

/** Column downsample: the transposed analogue of downsampleRows. */
dsl::Function downsampleCols(const std::string &name, const PyrDims &d,
                             const Access2 &src, dsl::Expr sr,
                             dsl::Expr tc);

/**
 * Row upsample by linear interpolation: out over [0, out_rows-1] x
 * [0, cols-1] reads src rows in [0, src_rows-1]; even rows copy, odd
 * rows average, trailing rows clamp.
 */
dsl::Function upsampleRows(const std::string &name, const PyrDims &d,
                           const Access2 &src, dsl::Expr out_rows,
                           dsl::Expr src_rows, dsl::Expr cols);

/** Column upsample: the transposed analogue of upsampleRows. */
dsl::Function upsampleCols(const std::string &name, const PyrDims &d,
                           const Access2 &src, dsl::Expr out_cols,
                           dsl::Expr src_cols, dsl::Expr rows);

/**
 * Level sizes rows >> l (floor halving per level).
 */
std::vector<std::int64_t> levelSizes(std::int64_t size0, int levels);

/**
 * Runtime parameter vector for pipelines built with per-level size
 * parameters in the order R, C, S1..S_{L-1}, T1..T_{L-1}.
 */
std::vector<std::int64_t> levelSizeParams(std::int64_t rows,
                                          std::int64_t cols, int levels);

} // namespace polymage::apps::detail

#endif // POLYMAGE_APPS_PYRAMID_UTIL_HPP
