/**
 * @file
 * Histogram equalisation: the paper's Fig. 3 histogram accumulator, a
 * prefix-sum scan expressed as a self-recurrent function (Table 1's
 * time-iterated pattern in one dimension), and a data-dependent
 * remapping of the pixels through the CDF.
 */
#include "apps/apps.hpp"

namespace polymage::apps {

using namespace dsl;

PipelineSpec
buildHistogramEq(std::int64_t rows_est, std::int64_t cols_est)
{
    Parameter R("R"), C("C");
    Image I("I", DType::UChar, {Expr(R), Expr(C)});

    Variable x("x"), y("y"), b("b");
    Interval rows(Expr(0), Expr(R) - 1), cols(Expr(0), Expr(C) - 1);
    Interval bins(Expr(0), Expr(255));

    Accumulator hist("hist", {b}, {bins}, {x, y}, {rows, cols},
                     DType::Int);
    hist.accumulate({I(x, y)}, Expr(1));

    // Prefix sum over the bins (self-recurrent scan).
    Function cdf("cdf", {b}, {bins}, DType::Int);
    cdf.define({Case(Expr(b) == 0, hist(Expr(0))),
                Case(Expr(b) >= 1, cdf(Expr(b) - 1) + hist(b))});

    Function eq("eq", {x, y}, {rows, cols}, DType::UChar);
    eq.define(cast(DType::UChar,
                   cast(DType::Long, cdf(I(x, y))) * 255 /
                       (cast(DType::Long, Expr(R)) * Expr(C))));

    PipelineSpec spec("histogram_eq");
    spec.addParam(R);
    spec.addParam(C);
    spec.addInput(I);
    spec.addOutput(eq);
    spec.estimate(R, rows_est);
    spec.estimate(C, cols_est);
    return spec;
}

} // namespace polymage::apps
