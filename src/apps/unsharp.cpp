/**
 * @file
 * Unsharp mask (paper §4): a separable 5-tap Gaussian blur of a
 * 3-channel image followed by a thresholded sharpening step.  The
 * point-wise sharpen/mask stages inline; the two blur stencils fuse
 * into one overlapped-tiled group.
 */
#include "apps/apps.hpp"

namespace polymage::apps {

using namespace dsl;

PipelineSpec
buildUnsharpMask(std::int64_t rows_est, std::int64_t cols_est)
{
    Parameter R("R"), C("C");
    Image I("I", DType::Float, {Expr(3), Expr(R) + 4, Expr(C) + 4});

    Variable c("c"), x("x"), y("y");
    Interval chan(Expr(0), Expr(2));
    Interval rows(Expr(0), Expr(R) + 3);
    Interval cols(Expr(0), Expr(C) + 3);
    const std::vector<Variable> vars{c, x, y};
    const std::vector<Interval> dom{chan, rows, cols};

    Condition cx = (Expr(x) >= 2) & (Expr(x) <= Expr(R) + 1);
    Condition cxy = cx & (Expr(y) >= 2) & (Expr(y) <= Expr(C) + 1);

    const std::vector<double> gauss{1 / 16.0, 4 / 16.0, 6 / 16.0,
                                    4 / 16.0, 1 / 16.0};

    Function blury("blury", vars, dom, DType::Float);
    blury.define({Case(
        cx, stencil1d([&](Expr i) { return I(c, i, y); }, Expr(x),
                      gauss))});

    Function blurx("blurx", vars, dom, DType::Float);
    blurx.define({Case(
        cxy, stencil1d([&](Expr j) { return blury(c, x, j); }, Expr(y),
                       gauss))});

    const double weight = 3.0;
    Function sharpen("sharpen", vars, dom, DType::Float);
    sharpen.define({Case(cxy, I(c, x, y) * Expr(1.0 + weight) -
                                 blurx(c, x, y) * Expr(weight))});

    const double threshold = 0.01;
    Function masked("masked", vars, dom, DType::Float);
    masked.define({Case(
        cxy, select(abs(I(c, x, y) - blurx(c, x, y)) < Expr(threshold),
                    I(c, x, y), sharpen(c, x, y)))});

    PipelineSpec spec("unsharp_mask");
    spec.addParam(R);
    spec.addParam(C);
    spec.addInput(I);
    spec.addOutput(masked);
    spec.estimate(R, rows_est);
    spec.estimate(C, cols_est);
    return spec;
}

} // namespace polymage::apps
