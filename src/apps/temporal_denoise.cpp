/**
 * @file
 * Temporal denoise: the streaming benchmark chain.  Spatial separable
 * 3-tap blur of the current frame, blended against the previous
 * denoised frame (temporal IIR), the previous blur, and the raw
 * frames one and two frames back.  Exercises every ring kind of the
 * stream lowering: an input-image ring (I at delays 1 and 2, depth
 * 3), a synthetic feedback ring (blury is not a declared output), and
 * a declared-output ring (denoised feeds itself).
 */
#include "apps/apps.hpp"

namespace polymage::apps {

using namespace dsl;

PipelineSpec
buildTemporalDenoise(std::int64_t rows_est, std::int64_t cols_est)
{
    Parameter R("R"), C("C");
    Image I("I", DType::Float, {Expr(R) + 2, Expr(C) + 2});

    PipelineSpec spec("temporal_denoise");
    spec.addParam(R);
    spec.addParam(C);
    spec.addInput(I);
    spec.estimate(R, rows_est);
    spec.estimate(C, cols_est);
    spec.setMaxDelay(2);

    Variable x("x"), y("y");
    Interval rows(Expr(0), Expr(R) + 1);
    Interval cols(Expr(0), Expr(C) + 1);
    const std::vector<Variable> vars{x, y};
    const std::vector<Interval> dom{rows, cols};

    Condition cy = (Expr(y) >= 1) & (Expr(y) <= Expr(C));
    Condition cx = (Expr(x) >= 1) & (Expr(x) <= Expr(R));

    // Separable 3-tap blur, defined over the whole domain (border
    // columns/rows pass through) so the temporal blend below may read
    // it everywhere.
    Function blurx("blurx", vars, dom, DType::Float);
    blurx.define({Case(cy, (I(x, y - 1) + I(x, y) * Expr(2.0) +
                            I(x, y + 1)) *
                               Expr(0.25)),
                  Case((Expr(y) < 1) | (Expr(y) > Expr(C)), I(x, y))});

    Function blury("blury", vars, dom, DType::Float);
    blury.define(
        {Case(cx, (blurx(x - 1, y) + blurx(x, y) * Expr(2.0) +
                   blurx(x + 1, y)) *
                      Expr(0.25)),
         Case((Expr(x) < 1) | (Expr(x) > Expr(R)), blurx(x, y))});

    // Frame-delay taps: raw input one and two frames back, the
    // previous blur, and the previous denoised output (IIR feedback).
    Image I1 = prev(spec, I, 1);
    Image I2 = prev(spec, I, 2);
    Image B1 = prev(spec, blury, 1);

    Function denoised("denoised", vars, dom, DType::Float);
    Image D1 = prev(spec, denoised, 1);
    denoised.define(Expr(0.45) * blury(x, y) + Expr(0.15) * B1(x, y) +
                    Expr(0.2) * D1(x, y) + Expr(0.12) * I1(x, y) +
                    Expr(0.08) * I2(x, y));

    spec.addOutput(denoised);
    return spec;
}

} // namespace polymage::apps
