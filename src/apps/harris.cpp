/**
 * @file
 * Harris corner detection, following the paper's Figure 1 line by
 * line: Sobel-style derivative stencils, products of derivatives, 3x3
 * box sums, and the det/trace corner response.
 */
#include "apps/apps.hpp"

namespace polymage::apps {

using namespace dsl;

PipelineSpec
buildHarris(std::int64_t rows_est, std::int64_t cols_est)
{
    Parameter R("R"), C("C");
    Image I("I", DType::Float, {Expr(R) + 2, Expr(C) + 2});

    Variable x("x"), y("y");
    Interval row(Expr(0), Expr(R) + 1);
    Interval col(Expr(0), Expr(C) + 1);
    const std::vector<Variable> vars{x, y};
    const std::vector<Interval> dom{row, col};

    Condition c = (Expr(x) >= 1) & (Expr(x) <= Expr(R)) &
                  (Expr(y) >= 1) & (Expr(y) <= Expr(C));
    Condition cb = (Expr(x) >= 2) & (Expr(x) <= Expr(R) - 1) &
                   (Expr(y) >= 2) & (Expr(y) <= Expr(C) - 1);

    auto acc_i = [&](Expr ix, Expr iy) { return I(ix, iy); };

    Function Iy("Iy", vars, dom, DType::Float);
    Iy.define({Case(c, stencil(acc_i, x, y,
                               {{-1, -2, -1},
                                { 0,  0,  0},
                                { 1,  2,  1}}, 1.0 / 12))});

    Function Ix("Ix", vars, dom, DType::Float);
    Ix.define({Case(c, stencil(acc_i, x, y,
                               {{-1, 0, 1},
                                {-2, 0, 2},
                                {-1, 0, 1}}, 1.0 / 12))});

    Function Ixx("Ixx", vars, dom, DType::Float);
    Ixx.define({Case(c, Ix(x, y) * Ix(x, y))});

    Function Iyy("Iyy", vars, dom, DType::Float);
    Iyy.define({Case(c, Iy(x, y) * Iy(x, y))});

    Function Ixy("Ixy", vars, dom, DType::Float);
    Ixy.define({Case(c, Ix(x, y) * Iy(x, y))});

    Function Sxx("Sxx", vars, dom, DType::Float);
    Function Syy("Syy", vars, dom, DType::Float);
    Function Sxy("Sxy", vars, dom, DType::Float);
    const std::vector<std::pair<Function *, Function *>> sums{
        {&Sxx, &Ixx}, {&Syy, &Iyy}, {&Sxy, &Ixy}};
    for (auto [sum, prod] : sums) {
        auto acc = [&, p = prod](Expr ix, Expr iy) {
            return (*p)(ix, iy);
        };
        sum->define({Case(cb, stencil(acc, x, y,
                                      {{1, 1, 1},
                                       {1, 1, 1},
                                       {1, 1, 1}}))});
    }

    Function det("det", vars, dom, DType::Float);
    det.define({Case(cb, Sxx(x, y) * Syy(x, y) - Sxy(x, y) * Sxy(x, y))});

    Function trace("trace", vars, dom, DType::Float);
    trace.define({Case(cb, Sxx(x, y) + Syy(x, y))});

    Function harris("harris", vars, dom, DType::Float);
    Expr coarsity =
        det(x, y) - Expr(0.04) * trace(x, y) * trace(x, y);
    harris.define({Case(cb, coarsity)});

    PipelineSpec spec("harris");
    spec.addParam(R);
    spec.addParam(C);
    spec.addInput(I);
    spec.addOutput(harris);
    spec.estimate(R, rows_est);
    spec.estimate(C, cols_est);
    return spec;
}

} // namespace polymage::apps
