/**
 * @file
 * Camera raw processing pipeline (paper §4, after the Frankencamera
 * pipeline): hot-pixel suppression on the 10-bit GRBG mosaic,
 * deinterleaving into four colour planes with white balance, bilinear
 * demosaicking (green, then red/blue at every site class),
 * full-resolution interleaving via parity selects, a colour-correction
 * matrix (point-wise, inlined), and a gamma curve applied through a
 * small lookup table.
 *
 * Everything except the LUT fuses into one overlapped-tiled group with
 * scale-2 alignment between full- and half-resolution stages; the LUT
 * stays separate (paper: "fuses all stages except small lookup table
 * computations").  The output is cropped by a fixed margin so no
 * boundary cases are needed (as in the Halide/FCam implementations).
 */
#include "apps/apps.hpp"

namespace polymage::apps {

using namespace dsl;

PipelineSpec
buildCameraPipeline(std::int64_t rows_est, std::int64_t cols_est)
{
    Parameter R("R"), C("C");
    Image raw("raw", DType::UShort, {Expr(R) + 4, Expr(C) + 4});

    Variable x("x"), y("y"), c("c"), i("i");

    // ---- Hot pixel suppression on the mosaic ------------------------
    Interval fr(Expr(0), Expr(R) + 3), fc(Expr(0), Expr(C) + 3);
    Condition interior = (Expr(x) >= 2) & (Expr(x) <= Expr(R) + 1) &
                         (Expr(y) >= 2) & (Expr(y) <= Expr(C) + 1);
    Function denoised("denoised", {x, y}, {fr, fc}, DType::UShort);
    {
        Expr up = raw(Expr(x) - 2, y), dn = raw(Expr(x) + 2, y);
        Expr lf = raw(x, Expr(y) - 2), rt = raw(x, Expr(y) + 2);
        Expr lo = min(min(up, dn), min(lf, rt));
        Expr hi = max(max(up, dn), max(lf, rt));
        denoised.define({Case(interior, clamp(raw(x, y), lo, hi))});
    }

    // ---- Deinterleave into white-balanced half-resolution planes ----
    // GRBG: (even, even) Gr, (even, odd) R, (odd, even) B,
    // (odd, odd) Gb, on the +2-shifted interior.
    Interval hr(Expr(0), Expr(R) / 2 - 1), hc(Expr(0), Expr(C) / 2 - 1);
    const double inv_white = 1.0 / 1023.0;
    auto plane = [&](const char *name, std::int64_t dx, std::int64_t dy,
                     double gain) {
        Function f(name, {x, y}, {hr, hc}, DType::Float);
        f.define(cast(DType::Float,
                      denoised(Expr(x) * 2 + 2 + dx,
                               Expr(y) * 2 + 2 + dy)) *
                 Expr(gain * inv_white));
        return f;
    };
    Function gr = plane("gr", 0, 0, 1.0);
    Function rp = plane("rp", 0, 1, 1.25);
    Function bp = plane("bp", 1, 0, 1.45);
    Function gb = plane("gb", 1, 1, 1.0);

    // ---- Demosaic: interpolate each colour at every site class ------
    Interval dr(Expr(1), Expr(R) / 2 - 2), dc(Expr(1), Expr(C) / 2 - 2);
    auto demosaic = [&](const char *name, Expr body) {
        Function f(name, {x, y}, {dr, dc}, DType::Float);
        f.define(body);
        return f;
    };
    Expr quarter(0.25), half(0.5);
    Function g_r = demosaic(
        "g_r", (gr(x, y) + gr(x, Expr(y) + 1) + gb(Expr(x) - 1, y) +
                gb(x, y)) *
                   quarter);
    Function g_b = demosaic(
        "g_b", (gr(x, y) + gr(Expr(x) + 1, y) + gb(x, Expr(y) - 1) +
                gb(x, y)) *
                   quarter);
    Function r_gr = demosaic("r_gr",
                             (rp(x, Expr(y) - 1) + rp(x, y)) * half);
    Function b_gr = demosaic("b_gr",
                             (bp(Expr(x) - 1, y) + bp(x, y)) * half);
    Function r_gb = demosaic("r_gb",
                             (rp(x, y) + rp(Expr(x) + 1, y)) * half);
    Function b_gb = demosaic("b_gb",
                             (bp(x, y) + bp(x, Expr(y) + 1)) * half);
    Function r_b = demosaic(
        "r_b", (rp(x, Expr(y) - 1) + rp(x, y) + rp(Expr(x) + 1, Expr(y) - 1) +
                rp(Expr(x) + 1, y)) *
                   quarter);
    Function b_r = demosaic(
        "b_r", (bp(Expr(x) - 1, y) + bp(x, y) + bp(Expr(x) - 1, Expr(y) + 1) +
                bp(x, Expr(y) + 1)) *
                   quarter);

    // ---- Interleave to full resolution (cropped by the margin) ------
    Interval orow(Expr(0), Expr(R) - 7), ocol(Expr(0), Expr(C) - 7);
    Expr hx = (Expr(x) + 2) / 2, hy = (Expr(y) + 2) / 2;
    Condition even_x = (Expr(x) % 2 == Expr(0));
    Condition even_y = (Expr(y) % 2 == Expr(0));

    Function rr("rr", {x, y}, {orow, ocol}, DType::Float);
    rr.define(select(even_x,
                     select(even_y, r_gr(hx, hy), rp(hx, hy)),
                     select(even_y, r_b(hx, hy), r_gb(hx, hy))));
    Function gg("gg", {x, y}, {orow, ocol}, DType::Float);
    gg.define(select(even_x,
                     select(even_y, gr(hx, hy), g_r(hx, hy)),
                     select(even_y, g_b(hx, hy), gb(hx, hy))));
    Function bb("bb", {x, y}, {orow, ocol}, DType::Float);
    bb.define(select(even_x,
                     select(even_y, b_gr(hx, hy), b_r(hx, hy)),
                     select(even_y, bp(hx, hy), b_gb(hx, hy))));

    // ---- Colour correction (point-wise, inlined) ---------------------
    Interval chan(Expr(0), Expr(2));
    Function corrected("corrected", {c, x, y}, {chan, orow, ocol},
                       DType::Float);
    corrected.define(select(
        Expr(c) == 0,
        rr(x, y) * Expr(1.62) + gg(x, y) * Expr(-0.44) +
            bb(x, y) * Expr(-0.18),
        select(Expr(c) == 1,
               rr(x, y) * Expr(-0.21) + gg(x, y) * Expr(1.49) +
                   bb(x, y) * Expr(-0.28),
               rr(x, y) * Expr(-0.09) + gg(x, y) * Expr(-0.35) +
                   bb(x, y) * Expr(1.44))));

    // ---- Gamma curve via a lookup table ------------------------------
    Function curve("curve", {i}, {Interval(Expr(0), Expr(1023))},
                   DType::Float);
    curve.define(
        Expr(255.0) *
        pow(cast(DType::Float, Expr(i)) * Expr(1.0 / 1023.0),
            Expr(1.0 / 2.2)));

    Function processed("processed", {c, x, y}, {chan, orow, ocol},
                       DType::UChar);
    processed.define(cast(
        DType::UChar,
        curve(clamp(cast(DType::Int,
                         corrected(c, x, y) * Expr(1023.0)),
                    Expr(0), Expr(1023)))));

    PipelineSpec spec("camera_pipe");
    spec.addParam(R);
    spec.addParam(C);
    spec.addInput(raw);
    spec.addOutput(processed);
    spec.estimate(R, rows_est);
    spec.estimate(C, cols_est);
    return spec;
}

} // namespace polymage::apps
