#include "apps/pyramid_util.hpp"

#include "apps/apps.hpp"

namespace polymage::apps::detail {

using namespace dsl;

namespace {

/** Assemble vars/dom with the leading dims followed by (x, y) ranges. */
void
makeDomain(const PyrDims &d, const Expr &rows, const Expr &cols,
           std::vector<Variable> &vars, std::vector<Interval> &dom)
{
    vars = d.preVars;
    dom = d.preDom;
    vars.push_back(d.x);
    dom.emplace_back(Expr(0), rows - Expr(1));
    vars.push_back(d.y);
    dom.emplace_back(Expr(0), cols - Expr(1));
}

} // namespace

Function
downsampleRows(const std::string &name, const PyrDims &d,
               const Access2 &src, Expr sr, Expr tc)
{
    std::vector<Variable> vars;
    std::vector<Interval> dom;
    makeDomain(d, sr, tc, vars, dom);
    Function f(name, vars, dom, d.dtype);

    Expr x(d.x), y(d.y);
    // Interior [1 2 1]/4 at row 2x; x = 0 averages the first two rows.
    // The border is written with the same affine accesses (2x, 2x+1 at
    // x == 0) so the dimension keeps constant dependence vectors and
    // stays tileable.
    Expr interior = src(x * 2 - 1, y) * Expr(0.25) +
                    src(x * 2, y) * Expr(0.5) +
                    src(x * 2 + 1, y) * Expr(0.25);
    Expr border = (src(x * 2, y) + src(x * 2 + 1, y)) * Expr(0.5);
    f.define({Case(x >= 1, interior), Case(x == 0, border)});
    return f;
}

Function
downsampleCols(const std::string &name, const PyrDims &d,
               const Access2 &src, Expr sr, Expr tc)
{
    std::vector<Variable> vars;
    std::vector<Interval> dom;
    makeDomain(d, sr, tc, vars, dom);
    Function f(name, vars, dom, d.dtype);

    Expr x(d.x), y(d.y);
    Expr interior = src(x, y * 2 - 1) * Expr(0.25) +
                    src(x, y * 2) * Expr(0.5) +
                    src(x, y * 2 + 1) * Expr(0.25);
    Expr border = (src(x, y * 2) + src(x, y * 2 + 1)) * Expr(0.5);
    f.define({Case(y >= 1, interior), Case(y == 0, border)});
    return f;
}

Function
upsampleRows(const std::string &name, const PyrDims &d,
             const Access2 &src, Expr out_rows, Expr src_rows, Expr cols)
{
    std::vector<Variable> vars;
    std::vector<Interval> dom;
    makeDomain(d, out_rows, cols, vars, dom);
    Function f(name, vars, dom, d.dtype);

    Expr x(d.x), y(d.y);
    // Even rows copy, odd rows interpolate; the last row (or two, for
    // odd sizes) clamps to the final source row.  The redundant upper
    // bounds make every access provably in-bounds per case.
    Expr top = src_rows * 2;
    Condition even = (x % 2 == Expr(0)) & (x <= top - 2);
    Condition odd = (x % 2 == Expr(1)) & (x <= top - 3);
    Condition tail = (x >= top - 1);
    Expr half = x / 2;
    f.define({
        Case(even, src(half, y)),
        Case(odd, (src(half, y) + src(half + 1, y)) * Expr(0.5)),
        Case(tail, src((x - 1) / 2, y)),
    });
    return f;
}

Function
upsampleCols(const std::string &name, const PyrDims &d,
             const Access2 &src, Expr out_cols, Expr src_cols, Expr rows)
{
    std::vector<Variable> vars;
    std::vector<Interval> dom;
    makeDomain(d, rows, out_cols, vars, dom);
    Function f(name, vars, dom, d.dtype);

    Expr x(d.x), y(d.y);
    Expr top = src_cols * 2;
    Condition even = (y % 2 == Expr(0)) & (y <= top - 2);
    Condition odd = (y % 2 == Expr(1)) & (y <= top - 3);
    Condition tail = (y >= top - 1);
    Expr half = y / 2;
    f.define({
        Case(even, src(x, half)),
        Case(odd, (src(x, half) + src(x, half + 1)) * Expr(0.5)),
        Case(tail, src(x, (y - 1) / 2)),
    });
    return f;
}

std::vector<std::int64_t>
levelSizes(std::int64_t size0, int levels)
{
    std::vector<std::int64_t> sizes{size0};
    for (int l = 1; l < levels; ++l)
        sizes.push_back(sizes.back() / 2);
    return sizes;
}

std::vector<std::int64_t>
levelSizeParams(std::int64_t rows, std::int64_t cols, int levels)
{
    std::vector<std::int64_t> params{rows, cols};
    const auto sr = levelSizes(rows, levels);
    const auto sc = levelSizes(cols, levels);
    for (int l = 1; l < levels; ++l)
        params.push_back(sr[std::size_t(l)]);
    for (int l = 1; l < levels; ++l)
        params.push_back(sc[std::size_t(l)]);
    return params;
}

} // namespace polymage::apps::detail

namespace polymage::apps {

std::vector<std::int64_t>
pyramidParams(std::int64_t rows, std::int64_t cols, int levels)
{
    return detail::levelSizeParams(rows, cols, levels);
}

} // namespace polymage::apps
