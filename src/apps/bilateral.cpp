/**
 * @file
 * Bilateral grid (paper §4, [Chen et al.]): grid construction as a
 * reduction over the image (homogeneous value/weight channels), a
 * separable 3-axis grid blur, and trilinear slicing.  Seven stages:
 * gridv, gridw, gridc (point-wise, inlined), blurz, blurx, blury,
 * slice.  The reduction stays in its own group (reductions are not
 * fused); the blur and slice stages fuse with scale-8 alignment.
 *
 * Spatial sigma 8, range sigma 0.1 (10 intensity bins); all grid axes
 * carry a one-cell shift so the blur stages need no boundary cases.
 */
#include "apps/apps.hpp"

namespace polymage::apps {

using namespace dsl;

PipelineSpec
buildBilateralGrid(std::int64_t rows_est, std::int64_t cols_est)
{
    const std::int64_t s = 8;   // spatial bin size
    const double inv_r = 10.0;  // 1 / range sigma

    Parameter R("R"), C("C");
    Image I("I", DType::Float, {Expr(R), Expr(C)});

    Variable x("x"), y("y"), gx("gx"), gy("gy"), gz("gz"), cc("cc");
    Interval rows(Expr(0), Expr(R) - 1), cols(Expr(0), Expr(C) - 1);
    Interval gxd(Expr(0), Expr(R) / s + 3);
    Interval gyd(Expr(0), Expr(C) / s + 3);
    Interval gzd(Expr(0), Expr(12));
    Interval ccd(Expr(0), Expr(1));

    // Grid cell of a pixel: rounded spatial bin (+1 shift), rounded
    // intensity bin (+1 shift).
    Expr tx = (Expr(x) + s / 2) / s + 1;
    Expr ty = (Expr(y) + s / 2) / s + 1;
    Expr tz = cast(DType::Int, I(x, y) * Expr(inv_r) + Expr(0.5)) + 1;

    Accumulator gridv("gridv", {gx, gy, gz}, {gxd, gyd, gzd}, {x, y},
                      {rows, cols}, DType::Float);
    gridv.accumulate({tx, ty, tz}, I(x, y));

    Accumulator gridw("gridw", {gx, gy, gz}, {gxd, gyd, gzd}, {x, y},
                      {rows, cols}, DType::Float);
    gridw.accumulate({tx, ty, tz}, Expr(1.0));

    // Homogeneous view: cc = 0 selects the value sum, cc = 1 the
    // weight sum.  Point-wise: inlined into blurz.
    Function gridc("gridc", {gx, gy, gz, cc}, {gxd, gyd, gzd, ccd},
                   DType::Float);
    gridc.define(select(Expr(cc) == 0, gridv(gx, gy, gz),
                        gridw(gx, gy, gz)));

    // Separable [1 2 1]/4 blur along z, x, y.
    Function blurz("blurz", {gx, gy, gz, cc},
                   {gxd, gyd, Interval(Expr(1), Expr(11)), ccd},
                   DType::Float);
    blurz.define(stencil1d(
        [&](Expr k) { return gridc(gx, gy, k, cc); }, Expr(gz),
        {0.25, 0.5, 0.25}));

    Function blurx("blurx", {gx, gy, gz, cc},
                   {Interval(Expr(1), Expr(R) / s + 2), gyd,
                    Interval(Expr(1), Expr(11)), ccd},
                   DType::Float);
    blurx.define(stencil1d(
        [&](Expr k) { return blurz(k, gy, gz, cc); }, Expr(gx),
        {0.25, 0.5, 0.25}));

    Function blury("blury", {gx, gy, gz, cc},
                   {Interval(Expr(1), Expr(R) / s + 2),
                    Interval(Expr(1), Expr(C) / s + 2),
                    Interval(Expr(1), Expr(11)), ccd},
                   DType::Float);
    blury.define(stencil1d(
        [&](Expr k) { return blurx(gx, k, gz, cc); }, Expr(gy),
        {0.25, 0.5, 0.25}));

    // Trilinear slice: interpolate the blurred grid at each pixel and
    // divide the homogeneous value by the weight.
    Function slice("slice", {x, y}, {rows, cols}, DType::Float);
    {
        Expr gx0 = Expr(x) / s + 1;
        Expr gy0 = Expr(y) / s + 1;
        Expr zv = I(x, y) * Expr(inv_r);
        Expr zi = cast(DType::Int, zv);
        Expr gz0 = zi + 1;
        Expr fx = cast(DType::Float, Expr(x) % s) * Expr(1.0 / s);
        Expr fy = cast(DType::Float, Expr(y) % s) * Expr(1.0 / s);
        Expr fz = zv - cast(DType::Float, zi);

        auto lerp = [](Expr a, Expr b, Expr t) {
            return a + (b - a) * t;
        };
        auto sample = [&](int chan) {
            Expr ch(chan);
            Expr c00 = lerp(blury(gx0, gy0, gz0, ch),
                            blury(gx0 + 1, gy0, gz0, ch), fx);
            Expr c10 = lerp(blury(gx0, gy0 + 1, gz0, ch),
                            blury(gx0 + 1, gy0 + 1, gz0, ch), fx);
            Expr c01 = lerp(blury(gx0, gy0, gz0 + 1, ch),
                            blury(gx0 + 1, gy0, gz0 + 1, ch), fx);
            Expr c11 = lerp(blury(gx0, gy0 + 1, gz0 + 1, ch),
                            blury(gx0 + 1, gy0 + 1, gz0 + 1, ch), fx);
            return lerp(lerp(c00, c10, fy), lerp(c01, c11, fy), fz);
        };
        slice.define(sample(0) / sample(1));
    }

    PipelineSpec spec("bilateral_grid");
    spec.addParam(R);
    spec.addParam(C);
    spec.addInput(I);
    spec.addOutput(slice);
    spec.estimate(R, rows_est);
    spec.estimate(C, cols_est);
    return spec;
}

} // namespace polymage::apps
