/**
 * @file
 * Pyramid blending demo (paper Fig. 8's application): blends two
 * images -- each sharp in one half -- through Laplacian pyramids with a
 * soft mask, producing an everywhere-sharp result.  Prints the
 * grouping the compiler found (the dashed boxes of Fig. 8).
 *
 *   ./pyramid_blend_demo [rows cols [levels]]
 */
#include <cmath>
#include <cstdio>

#include "apps/apps.hpp"
#include "runtime/executor.hpp"
#include "runtime/imageio.hpp"
#include "runtime/synth.hpp"

using namespace polymage;

namespace {

/** Blur one half of an image (simulating defocus). */
rt::Buffer
defocusHalf(const rt::Buffer &src, bool left_half)
{
    const std::int64_t rows = src.dims()[0], cols = src.dims()[1];
    rt::Buffer out = src;
    const float *ip = src.dataAs<const float>();
    float *op = out.dataAs<float>();
    const std::int64_t from = left_half ? 0 : cols / 2;
    const std::int64_t to = left_half ? cols / 2 : cols;
    for (std::int64_t i = 4; i < rows - 4; ++i) {
        for (std::int64_t j = std::max<std::int64_t>(4, from);
             j < std::min(cols - 4, to); ++j) {
            float s = 0;
            for (int d = -4; d <= 4; ++d)
                s += ip[(i + d) * cols + j] + ip[i * cols + j + d];
            op[i * cols + j] = s / 18.0f;
        }
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::int64_t rows = argc > 1 ? std::atoll(argv[1]) : 1024;
    const std::int64_t cols = argc > 2 ? std::atoll(argv[2]) : 1024;
    const int levels = argc > 3 ? std::atoi(argv[3]) : 4;

    std::printf("pyramid blending %lld x %lld, %d levels\n",
                (long long)rows, (long long)cols, levels);

    rt::Buffer sharp = rt::synth::photo(rows, cols, 7);
    rt::Buffer a = defocusHalf(sharp, /*left=*/true);  // sharp right
    rt::Buffer b = defocusHalf(sharp, /*left=*/false); // sharp left
    rt::Buffer m = rt::synth::blendMask(rows, cols);   // 1 -> take a

    auto spec = apps::buildPyramidBlend(rows, cols, levels);
    rt::Executable exe = rt::Executable::build(spec);

    std::printf("\ngrouping (the paper's Fig. 8 dashed boxes):\n%s\n",
                exe.info().grouping.toString(exe.info().graph).c_str());

    auto outs = exe.run(apps::pyramidParams(rows, cols, levels),
                        {&b, &a, &m});
    // Mask ~1 on the left: takes image b (sharp left); the blended
    // output should be sharp everywhere.

    rt::writeImage(a, "blend_input_a.pgm");
    rt::writeImage(b, "blend_input_b.pgm");
    rt::writeImage(outs[0], "blend_output.pgm");
    std::printf("wrote blend_input_a.pgm / blend_input_b.pgm / "
                "blend_output.pgm\n");

    // Report sharpness (mean gradient magnitude) per half.
    auto sharpness = [&](const rt::Buffer &img, bool left) {
        const float *p = img.dataAs<const float>();
        double acc = 0;
        std::int64_t count = 0;
        const std::int64_t from = left ? 8 : cols / 2 + 8;
        const std::int64_t to = left ? cols / 2 - 8 : cols - 8;
        for (std::int64_t i = 8; i < rows - 8; ++i) {
            for (std::int64_t j = from; j < to; ++j) {
                acc += std::fabs(p[i * cols + j + 1] -
                                 p[i * cols + j]);
                ++count;
            }
        }
        return acc / double(count);
    };
    std::printf("\nsharpness (mean |gradient|):\n");
    std::printf("  input a : left %.5f right %.5f\n",
                sharpness(a, true), sharpness(a, false));
    std::printf("  input b : left %.5f right %.5f\n",
                sharpness(b, true), sharpness(b, false));
    std::printf("  blended : left %.5f right %.5f\n",
                sharpness(outs[0], true), sharpness(outs[0], false));
    return 0;
}
