/**
 * @file
 * A tour of the DSL's computation patterns (paper Table 1): builds a
 * tiny pipeline for each pattern, prints its structure and what the
 * compiler does with it, and evaluates it on a small input.
 */
#include <cstdio>

#include "driver/compiler.hpp"
#include "interp/interpreter.hpp"
#include "runtime/buffer.hpp"

using namespace polymage;
using namespace polymage::dsl;

namespace {

void
show(const char *title, const PipelineSpec &spec,
     const std::vector<std::int64_t> &params,
     const std::vector<const rt::Buffer *> &inputs)
{
    std::printf("==== %s ====\n", title);
    auto compiled = compilePipeline(spec);
    std::printf("%s", compiled.graph.toString().c_str());
    std::printf("%s", compiled.grouping.toString(compiled.graph).c_str());

    auto g = pg::PipelineGraph::build(spec);
    auto res = interp::evaluate(g, params, inputs);
    const rt::Buffer &out = res.outputs[0];
    std::printf("output[0..7]:");
    for (std::int64_t i = 0; i < std::min<std::int64_t>(8, out.numel());
         ++i) {
        std::printf(" %.3g", out.loadAsDouble(i));
    }
    std::printf("\n\n");
}

} // namespace

int
main()
{
    const std::int64_t n = 16;
    rt::Buffer vec(DType::Float, {n});
    for (int i = 0; i < n; ++i)
        vec.dataAs<float>()[i] = float(i);
    rt::Buffer bytes(DType::UChar, {n});
    for (int i = 0; i < n; ++i)
        bytes.dataAs<unsigned char>()[i] =
            static_cast<unsigned char>(i % 4);

    Parameter N("N");
    Variable x("x"), t("t"), b("b");
    Interval dom(Expr(0), Expr(N) - 1);

    { // Point-wise: f(x) = g(x).
        Image I("I", DType::Float, {Expr(N)});
        Function f("f", {x}, {dom}, DType::Float);
        f.define(I(x) * Expr(2.0) + Expr(1.0));
        PipelineSpec spec("pointwise");
        spec.addParam(N);
        spec.addOutput(f);
        spec.estimate(N, n);
        show("Point-wise", spec, {n}, {&vec});
    }

    { // Stencil: f(x) = sum of neighbours.
        Image I("I", DType::Float, {Expr(N)});
        Function f("f", {x}, {dom}, DType::Float);
        f.define({Case((Expr(x) >= 1) & (Expr(x) <= Expr(N) - 2),
                       stencil1d([&](Expr i) { return I(i); }, Expr(x),
                                 {1, 2, 1}, 0.25))});
        PipelineSpec spec("stencil");
        spec.addParam(N);
        spec.addOutput(f);
        spec.estimate(N, n);
        show("Stencil", spec, {n}, {&vec});
    }

    { // Upsample: f(x) = g(x / 2).
        Image I("I", DType::Float, {Expr(N)});
        Function g("g", {x}, {dom}, DType::Float);
        g.define(I(x));
        Function f("f", {x}, {Interval(Expr(0), Expr(N) * 2 - 2)},
                   DType::Float);
        f.define(g(Expr(x) / 2));
        PipelineSpec spec("upsample");
        spec.addParam(N);
        spec.addOutput(f);
        spec.estimate(N, n);
        show("Upsample", spec, {n}, {&vec});
    }

    { // Downsample: f(x) = g(2x) + g(2x + 1).
        Image I("I", DType::Float, {Expr(N)});
        Function g("g", {x}, {dom}, DType::Float);
        g.define(I(x));
        Function f("f", {x}, {Interval(Expr(0), Expr(N) / 2 - 1)},
                   DType::Float);
        f.define((g(Expr(x) * 2) + g(Expr(x) * 2 + 1)) * Expr(0.5));
        PipelineSpec spec("downsample");
        spec.addParam(N);
        spec.addOutput(f);
        spec.estimate(N, n);
        show("Downsample", spec, {n}, {&vec});
    }

    { // Histogram: accumulator over the image (paper Fig. 3).
        Image I("I", DType::UChar, {Expr(N)});
        Accumulator hist("hist", {b}, {Interval(Expr(0), Expr(3))},
                         {x}, {dom}, DType::Int);
        // Bin by value modulo 4 so the target provably fits the bins.
        hist.accumulate({cast(DType::Int, I(x)) % 4}, Expr(1));
        PipelineSpec spec("histogram");
        spec.addParam(N);
        spec.addOutput(hist);
        spec.estimate(N, n);
        show("Histogram", spec, {n}, {&bytes});
    }

    { // Time-iterated: f(t, x) = f(t-1, ...) smoothing.
        Image I("I", DType::Float, {Expr(N)});
        Function f("f", {t, x},
                   {Interval(Expr(0), Expr(3)), dom}, DType::Float);
        Expr xm = max(Expr(x) - 1, Expr(0));
        Expr xp = min(Expr(x) + 1, Expr(N) - 1);
        f.define({Case(Expr(t) == 0, I(x)),
                  Case(Expr(t) >= 1,
                       (f(Expr(t) - 1, xm) + f(Expr(t) - 1, x) +
                        f(Expr(t) - 1, xp)) *
                           Expr(1.0 / 3))});
        PipelineSpec spec("time_iterated");
        spec.addParam(N);
        spec.addOutput(f);
        spec.estimate(N, n);
        show("Time-iterated", spec, {n}, {&vec});
    }

    std::printf("All Table-1 patterns expressed and evaluated.\n");
    return 0;
}
