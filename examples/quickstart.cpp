/**
 * @file
 * Quickstart: define a two-stage blur/sharpen pipeline in the PolyMage
 * DSL, compile it through the optimising stack, run it on a synthetic
 * photo, and compare against the unoptimised baseline.
 *
 *   ./quickstart [rows cols]
 */
#include <chrono>
#include <cstdio>

#include "dsl/dsl.hpp"
#include "runtime/executor.hpp"
#include "runtime/imageio.hpp"
#include "runtime/synth.hpp"

using namespace polymage;
using namespace polymage::dsl;

namespace {

/** Build the pipeline: 3x3 blur followed by a sharpen step. */
PipelineSpec
makePipeline(std::int64_t rows_est, std::int64_t cols_est)
{
    Parameter R("R"), C("C");
    Image I("I", DType::Float, {Expr(R), Expr(C)});
    Variable x("x"), y("y");
    Interval rows(Expr(0), Expr(R) - 1), cols(Expr(0), Expr(C) - 1);

    Condition interior = (Expr(x) >= 1) & (Expr(x) <= Expr(R) - 2) &
                         (Expr(y) >= 1) & (Expr(y) <= Expr(C) - 2);

    Function blur("blur", {x, y}, {rows, cols}, DType::Float);
    blur.define({Case(interior,
                      stencil([&](Expr i, Expr j) { return I(i, j); },
                              x, y,
                              {{1, 2, 1}, {2, 4, 2}, {1, 2, 1}},
                              1.0 / 16))});

    Condition inner = (Expr(x) >= 2) & (Expr(x) <= Expr(R) - 3) &
                      (Expr(y) >= 2) & (Expr(y) <= Expr(C) - 3);
    Function sharp("sharp", {x, y}, {rows, cols}, DType::Float);
    sharp.define({Case(
        inner, clamp(I(x, y) * Expr(2.0) -
                         stencil([&](Expr i, Expr j) {
                                     return blur(i, j);
                                 },
                                 x, y, {{1, 1, 1}, {1, 1, 1}, {1, 1, 1}},
                                 1.0 / 9),
                     Expr(0.0), Expr(1.0)))});

    PipelineSpec spec("quickstart");
    spec.addParam(R);
    spec.addParam(C);
    spec.addInput(I);
    spec.addOutput(sharp);
    spec.estimate(R, rows_est);
    spec.estimate(C, cols_est);
    return spec;
}

double
timeRun(const rt::Executable &exe, const std::vector<std::int64_t> &p,
        const std::vector<const rt::Buffer *> &in,
        std::vector<rt::Buffer> &out)
{
    exe.runInto(p, in, out); // warm-up
    double best = 1e300;
    for (int r = 0; r < 3; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        exe.runInto(p, in, out);
        best = std::min(best,
                        std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::int64_t rows = argc > 1 ? std::atoll(argv[1]) : 1536;
    const std::int64_t cols = argc > 2 ? std::atoll(argv[2]) : 2048;

    std::printf("PolyMage quickstart: blur+sharpen at %lld x %lld\n",
                (long long)rows, (long long)cols);

    auto spec = makePipeline(rows, cols);
    rt::Buffer input = rt::synth::photo(rows, cols);
    std::vector<const rt::Buffer *> inputs{&input};
    std::vector<std::int64_t> params{rows, cols};

    // Optimised build: inlining, grouping, overlapped tiling,
    // scratchpads, vectorisation.
    rt::Executable opt = rt::Executable::build(spec);
    std::printf("\ncompiler report:\n%s\n", opt.info().report().c_str());

    auto outputs = opt.run(params, inputs);
    const double t_opt = timeRun(opt, params, inputs, outputs);

    // Baseline: one parallel loop nest per stage, full buffers.
    rt::Executable base =
        rt::Executable::build(spec, CompileOptions::baseline(true));
    auto base_out = base.run(params, inputs);
    const double t_base = timeRun(base, params, inputs, base_out);

    std::printf("baseline   : %8.2f ms\n", t_base * 1e3);
    std::printf("optimised  : %8.2f ms  (%.2fx)\n", t_opt * 1e3,
                t_base / t_opt);

    rt::writeImage(input, "quickstart_input.pgm");
    rt::writeImage(outputs[0], "quickstart_output.pgm");
    std::printf("\nwrote quickstart_input.pgm / quickstart_output.pgm\n");
    return 0;
}
