/**
 * @file
 * Harris corner detection (paper Fig. 1) on a photo: runs the compiled
 * pipeline, reports the strongest corners, and writes the response map.
 *
 *   ./harris_corners [input.pgm] [--dump-code]
 *
 * Without an input file a synthetic checkerboard-over-gradient image
 * (strong, known corners) is used.
 */
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "apps/apps.hpp"
#include "runtime/executor.hpp"
#include "runtime/imageio.hpp"
#include "runtime/synth.hpp"

using namespace polymage;

namespace {

rt::Buffer
checkerboard(std::int64_t rows, std::int64_t cols)
{
    rt::Buffer img(dsl::DType::Float, {rows, cols});
    float *p = img.dataAs<float>();
    for (std::int64_t i = 0; i < rows; ++i) {
        for (std::int64_t j = 0; j < cols; ++j) {
            const bool c = ((i / 40) + (j / 40)) % 2 == 0;
            p[i * cols + j] =
                (c ? 0.85f : 0.15f) + 0.1f * float(j) / float(cols);
        }
    }
    return img;
}

} // namespace

int
main(int argc, char **argv)
{
    bool dump_code = false;
    const char *path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--dump-code") == 0)
            dump_code = true;
        else
            path = argv[i];
    }

    rt::Buffer gray;
    if (path != nullptr) {
        rt::Buffer img = rt::readImage(path);
        if (img.rank() == 3) {
            std::fprintf(stderr, "expected a grayscale PGM\n");
            return 1;
        }
        gray = rt::toFloat(img);
    } else {
        gray = checkerboard(514, 514);
    }
    const std::int64_t R = gray.dims()[0] - 2;
    const std::int64_t C = gray.dims()[1] - 2;

    auto spec = apps::buildHarris(R, C);
    rt::Executable exe = rt::Executable::build(spec);
    if (dump_code) {
        std::printf("%s\n", exe.info().code.source.c_str());
        return 0;
    }

    auto outs = exe.run({R, C}, {&gray});
    const rt::Buffer &resp = outs[0];

    // Collect local maxima above a threshold.
    struct Corner
    {
        std::int64_t x, y;
        float score;
    };
    std::vector<Corner> corners;
    const float *rp = resp.dataAs<const float>();
    const std::int64_t stride = resp.dims()[1];
    for (std::int64_t i = 3; i < R - 2; ++i) {
        for (std::int64_t j = 3; j < C - 2; ++j) {
            const float v = rp[i * stride + j];
            if (v <= 1e-4f)
                continue;
            bool is_max = true;
            for (int di = -1; di <= 1 && is_max; ++di)
                for (int dj = -1; dj <= 1; ++dj)
                    is_max &= v >= rp[(i + di) * stride + j + dj];
            if (is_max)
                corners.push_back({i, j, v});
        }
    }
    std::sort(corners.begin(), corners.end(),
              [](const Corner &a, const Corner &b) {
                  return a.score > b.score;
              });

    std::printf("Harris on %lld x %lld: %zu corners\n", (long long)R,
                (long long)C, corners.size());
    for (std::size_t i = 0; i < corners.size() && i < 10; ++i) {
        std::printf("  #%zu  (%4lld, %4lld)  score %.5f\n", i + 1,
                    (long long)corners[i].x, (long long)corners[i].y,
                    corners[i].score);
    }

    // Normalise the response for viewing and save it.
    rt::Buffer vis(dsl::DType::Float, resp.dims());
    float peak = 1e-9f;
    for (std::int64_t i = 0; i < resp.numel(); ++i)
        peak = std::max(peak, float(resp.loadAsDouble(i)));
    for (std::int64_t i = 0; i < resp.numel(); ++i) {
        vis.storeFromDouble(
            i, std::sqrt(std::max(0.0, resp.loadAsDouble(i) / peak)));
    }
    rt::writeImage(vis, "harris_response.pgm");
    std::printf("wrote harris_response.pgm\n");
    return 0;
}
