/**
 * @file
 * Pipeline explorer: compile any of the built-in benchmark pipelines
 * with chosen knobs and inspect what the optimizer did -- the DAG,
 * inlining, grouping, storage classes, and optionally the generated
 * C++.
 *
 *   ./pipeline_explorer <app> [options]
 *     app:          unsharp | bilateral | harris | camera | pyramid |
 *                   interpolate | locallap | histeq
 *     --tiles AxB   tile sizes (default 32x256)
 *     --othresh T   overlap threshold (default 0.4)
 *     --no-group    disable grouping/tiling (the paper's `base`)
 *     --dump-code   print the generated C++
 *     --dot         print the grouped DAG in Graphviz DOT syntax
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "apps/apps.hpp"
#include "driver/compiler.hpp"

using namespace polymage;

namespace {

dsl::PipelineSpec
specFor(const std::string &name)
{
    if (name == "unsharp")
        return apps::buildUnsharpMask(2048, 2048);
    if (name == "bilateral")
        return apps::buildBilateralGrid(2560, 1536);
    if (name == "harris")
        return apps::buildHarris(6400, 6400);
    if (name == "camera")
        return apps::buildCameraPipeline(2528, 1920);
    if (name == "pyramid")
        return apps::buildPyramidBlend(2048, 2048, 4);
    if (name == "interpolate")
        return apps::buildMultiscaleInterp(2560, 1536, 8);
    if (name == "locallap")
        return apps::buildLocalLaplacian(2560, 1536, 4, 8);
    if (name == "histeq")
        return apps::buildHistogramEq(2048, 2048);
    specError("unknown app '", name,
              "'; expected unsharp|bilateral|harris|camera|pyramid|"
              "interpolate|locallap|histeq");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <app> [--tiles AxB] [--othresh T] "
                     "[--no-group] [--dump-code] [--dot]\n",
                     argv[0]);
        return 1;
    }

    CompileOptions opts;
    bool dump_code = false;
    bool dump_dot = false;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--dump-code") == 0) {
            dump_code = true;
        } else if (std::strcmp(argv[i], "--dot") == 0) {
            dump_dot = true;
        } else if (std::strcmp(argv[i], "--no-group") == 0) {
            opts = CompileOptions::baseline(true);
        } else if (std::strcmp(argv[i], "--tiles") == 0 &&
                   i + 1 < argc) {
            opts.grouping.tileSizes.clear();
            std::string arg = argv[++i];
            std::size_t pos = 0;
            while (pos != std::string::npos) {
                opts.grouping.tileSizes.push_back(
                    std::atoll(arg.c_str() + pos));
                pos = arg.find('x', pos);
                if (pos != std::string::npos)
                    ++pos;
            }
        } else if (std::strcmp(argv[i], "--othresh") == 0 &&
                   i + 1 < argc) {
            opts.grouping.overlapThreshold = std::atof(argv[++i]);
        } else {
            std::fprintf(stderr, "unknown option %s\n", argv[i]);
            return 1;
        }
    }

    try {
        auto compiled = compilePipeline(specFor(argv[1]), opts);
        if (dump_code) {
            std::printf("%s\n", compiled.code.source.c_str());
        } else if (dump_dot) {
            std::vector<std::vector<int>> groups;
            for (const auto &grp : compiled.grouping.groups)
                groups.push_back(grp.stages);
            std::printf("%s", compiled.graph.toDot(groups).c_str());
        } else {
            std::printf("%s\n", compiled.report().c_str());
            std::printf("generated entry: %s (%zu bytes of C++)\n",
                        compiled.code.entry.c_str(),
                        compiled.code.source.size());
            for (const auto &w : compiled.bounds.warnings)
                std::printf("bounds warning: %s\n", w.c_str());
        }
    } catch (const SpecError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    return 0;
}
